/**
 * @file
 * PMP: Pattern Merging Prefetcher (MICRO'22, "Merging similar patterns
 * for hardware prefetching"). The coarsest characterization in the
 * family: patterns are keyed by the trigger *offset* alone, so a match
 * is almost always found. To survive the resulting aliasing, each
 * offset entry merges its last ~32 footprints into a counter vector
 * (anchored/rotated at the trigger), and per-block confidence
 * thresholds split the prediction into L1D and L2C targets
 * (L1/L2 Thresh 0.5/0.15 of MaxConf 32, Table IV).
 *
 * A PC-indexed table (PPT) provides a second merged vote that is
 * summed with the offset vote before thresholding.
 */

#pragma once

#include <vector>

#include "prefetchers/spatial_base.hh"

namespace gaze
{

struct PmpParams
{
    SpatialBaseParams base; ///< PMP uses 4KB regions (Table IV)

    /** Offset Pattern Table: one entry per trigger offset. */
    uint32_t optEntries = 64;

    /** PC Pattern Table entries. */
    uint32_t pptEntries = 32;

    /** Counter saturation = number of merged patterns (MaxConf). */
    uint32_t maxConf = 32;

    double l1Threshold = 0.50;
    double l2Threshold = 0.15;

    PmpParams() { base.regionSize = 4096; }
};

/** PMP with offset-indexed counter-vector merging. */
class PmpPrefetcher : public SpatialPatternPrefetcher
{
  public:
    explicit PmpPrefetcher(const PmpParams &params = {});

    std::string name() const override { return "pmp"; }
    uint64_t storageBits() const override;

  protected:
    void predictOnTrigger(const RegionInfo &info) override;
    void learnOnEnd(const RegionInfo &info) override;

  private:
    struct CounterVector
    {
        std::vector<uint16_t> counter;
        uint32_t merges = 0;
    };

    void mergeInto(CounterVector &cv, const RegionInfo &info);

    PmpParams cfg;
    std::vector<CounterVector> opt; ///< indexed directly by offset
    LruTable<CounterVector> ppt;
};

} // namespace gaze
