/**
 * @file
 * IPCP: Instruction Pointer Classifier-based Prefetching (ISCA'20),
 * the L1D variant. Each load IP is classified into one of three
 * classes and prefetched accordingly:
 *
 *  - CS  (constant stride): per-IP stride with confidence; prefetch
 *    `degree` blocks along the stride.
 *  - CPLX (complex stride): a signature of recent strides indexes the
 *    CSPT, chaining predicted strides ahead while confidence holds.
 *  - GS  (global stream): region-density detection in the RST; dense
 *    regions stream ahead aggressively.
 *
 * A small recent-requests (RR) filter suppresses duplicate issues.
 * Table sizes follow Table IV's 0.7KB budget (64-entry IP table,
 * 128-entry CSPT, 8-entry RST, 32-entry RR).
 */

#pragma once

#include <vector>

#include "common/bitset.hh"
#include "common/lru_table.hh"
#include "common/sat_counter.hh"
#include "sim/prefetcher.hh"

namespace gaze
{

struct IpcpParams
{
    uint32_t ipSets = 16;
    uint32_t ipWays = 4;
    uint32_t csptEntries = 128;
    uint32_t rstEntries = 8;
    uint32_t rrEntries = 32;

    uint32_t csDegree = 4;
    uint32_t cplxDepth = 3;
    uint32_t gsDegree = 8;

    /** Blocks seen in a region before it is declared streaming. */
    uint32_t gsDenseThreshold = 24;
};

/** IPCP-L1: the composite CS/CPLX/GS classifier. */
class IpcpPrefetcher : public Prefetcher
{
  public:
    explicit IpcpPrefetcher(const IpcpParams &params = {});

    std::string name() const override { return "ipcp"; }
    void onAccess(const DemandAccess &access) override;
    uint64_t storageBits() const override;

  private:
    enum class IpClass : uint8_t
    {
        None,
        ConstantStride,
        Complex,
        GlobalStream
    };

    struct IpEntry
    {
        Addr lastBlock = 0;
        int64_t stride = 0;
        SatCounter conf{3, 0};
        uint16_t signature = 0;
        IpClass cls = IpClass::None;
    };

    struct CsptEntry
    {
        int64_t stride = 0;
        SatCounter conf{3, 0};
    };

    struct RstEntry
    {
        uint32_t touched = 0;
        Bitset seen{64};
        bool streaming = false;
    };

    bool rrContains(Addr block) const;
    void rrInsert(Addr block);

    void issueLine(Addr vaddr, uint32_t fill_level);

    IpcpParams cfg;
    LruTable<IpEntry> ipTable;
    std::vector<CsptEntry> cspt;
    LruTable<RstEntry> rst;
    std::vector<Addr> rr;
    size_t rrNext = 0;
};

} // namespace gaze
