#include "prefetchers/pmp.hh"

#include "prefetchers/registry.hh"

namespace gaze
{

PmpPrefetcher::PmpPrefetcher(const PmpParams &params)
    : SpatialPatternPrefetcher(params.base), cfg(params),
      opt(params.optEntries), ppt(1, params.pptEntries)
{
    for (auto &cv : opt)
        cv.counter.assign(regionBlocks(), 0);
}

void
PmpPrefetcher::mergeInto(CounterVector &cv, const RegionInfo &info)
{
    if (cv.counter.empty())
        cv.counter.assign(regionBlocks(), 0);

    uint32_t n = regionBlocks();
    if (cv.merges >= cfg.maxConf) {
        // Exponential aging approximates "the 32 most recent
        // patterns": halve everything and keep merging.
        for (auto &c : cv.counter)
            c /= 2;
        cv.merges /= 2;
    }
    for (size_t b = info.footprint.findFirst(); b < info.footprint.size();
         b = info.footprint.findNext(b + 1)) {
        // Anchor at the trigger offset so footprints from different
        // region positions merge positionally.
        uint32_t anchored = (uint32_t(b) + n - info.trigger) % n;
        if (cv.counter[anchored] < cfg.maxConf)
            ++cv.counter[anchored];
    }
    ++cv.merges;
}

void
PmpPrefetcher::predictOnTrigger(const RegionInfo &info)
{
    uint32_t n = regionBlocks();
    const CounterVector &ov = opt[info.trigger % cfg.optEntries];
    uint64_t pc_key = mix64(info.triggerPc);
    const CounterVector *pv = ppt.find(0, pc_key);

    // Require some merge history before trusting the counters; a
    // freshly-seen offset says nothing yet.
    uint32_t history = ov.merges + (pv ? pv->merges : 0);
    if (history < 4)
        return;

    PfPattern pat(n, PfLevel::None);
    bool any = false;
    for (uint32_t a = 0; a < n; ++a) {
        // Combined vote over both tables. Confidence is against
        // MaxConf (the paper's "L1/L2 Thresh 0.5/0.15 of MaxConf 32"),
        // so conflict-diluted counters genuinely stay below threshold
        // — PMP's characteristic failure on complex patterns.
        double conf = 0.0;
        double weight = 0.0;
        if (ov.merges > 0) {
            double denom = std::max(cfg.maxConf / 2,
                                    std::min(ov.merges, cfg.maxConf));
            conf += double(ov.counter[a]) / denom;
            weight += 1.0;
        }
        if (pv && pv->merges > 0) {
            double denom = std::max(cfg.maxConf / 2,
                                    std::min(pv->merges, cfg.maxConf));
            conf += double(pv->counter[a]) / denom;
            weight += 1.0;
        }
        conf /= weight;
        uint32_t blk = (a + info.trigger) % n;
        if (conf >= cfg.l1Threshold) {
            pat[blk] = PfLevel::L1;
            any = true;
        } else if (conf >= cfg.l2Threshold) {
            pat[blk] = PfLevel::L2;
            any = true;
        }
    }
    if (any)
        installPattern(info, std::move(pat));
}

void
PmpPrefetcher::learnOnEnd(const RegionInfo &info)
{
    mergeInto(opt[info.trigger % cfg.optEntries], info);

    uint64_t pc_key = mix64(info.triggerPc);
    CounterVector *pv = ppt.find(0, pc_key);
    if (!pv) {
        CounterVector fresh;
        fresh.counter.assign(regionBlocks(), 0);
        ppt.insert(0, pc_key, std::move(fresh));
        pv = ppt.find(0, pc_key);
    }
    mergeInto(*pv, info);
}

uint64_t
PmpPrefetcher::storageBits() const
{
    // OPT entry: 64 counters x 6b ("320b counter vector" class);
    // PPT: tag (12b) + the same vector; plus FT/AT/PB as Table IV's
    // 5.0KB budget describes.
    uint64_t counter_bits = uint64_t(regionBlocks()) * 6;
    uint64_t opt_bits = uint64_t(cfg.optEntries) * counter_bits;
    uint64_t ppt_bits = uint64_t(cfg.pptEntries) * (12 + counter_bits);
    uint64_t ft_bits = 64ULL * (36 + 3 + 12 + 6);
    uint64_t at_bits = 64ULL * (36 + 3 + 12 + regionBlocks());
    uint64_t pb_bits = uint64_t(baseParams().pbEntries)
                       * (36 + 3 + 2 * regionBlocks());
    return opt_bits + ppt_bits + ft_bits + at_bits + pb_bits;
}

GAZE_REGISTER_PREFETCHER(pmp)
{
    PrefetcherDescriptor d;
    d.name = "pmp";
    d.doc = "PMP (MICRO'21): offset/PC pattern-merging with "
            "counter-vector confidence thresholds";
    d.options = {
        OptionSchema::uintRange(
            "region", 4096, 2 * blockSize, 1u << 20,
            "spatial region size in bytes (Table IV uses 4KB)", true),
    };
    d.build = [](const SpecOptions &o) -> std::unique_ptr<Prefetcher> {
        PmpParams cfg;
        cfg.base.regionSize = o.num("region");
        return std::make_unique<PmpPrefetcher>(cfg);
    };
    return d;
}

} // namespace gaze
