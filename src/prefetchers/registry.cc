#include "prefetchers/registry.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

#include "common/log.hh"
#include "common/types.hh"
#include "harness/export.hh"

namespace gaze
{

// Force-link anchors. gaze_core is a static library and, with
// construction routed through the registry, nothing references the
// scheme translation units by symbol any more — without these externs
// the linker would drop exactly the object files whose registrars
// populate the registry. One anchor per GAZE_REGISTER_PREFETCHER
// block; the registry constructor cross-checks the count so a scheme
// registered without an anchor (or vice versa) dies loudly in every
// test run instead of silently vanishing from some binaries.
extern PrefetcherRegistrar gazePrefetcherRegistrar_gaze;
extern PrefetcherRegistrar gazePrefetcherRegistrar_sms;
extern PrefetcherRegistrar gazePrefetcherRegistrar_bingo;
extern PrefetcherRegistrar gazePrefetcherRegistrar_dspatch;
extern PrefetcherRegistrar gazePrefetcherRegistrar_pmp;
extern PrefetcherRegistrar gazePrefetcherRegistrar_ipcp;
extern PrefetcherRegistrar gazePrefetcherRegistrar_spp_ppf;
extern PrefetcherRegistrar gazePrefetcherRegistrar_spp;
extern PrefetcherRegistrar gazePrefetcherRegistrar_vberti;
extern PrefetcherRegistrar gazePrefetcherRegistrar_ip_stride;

namespace
{

const PrefetcherRegistrar *const kSchemeAnchors[] = {
    &gazePrefetcherRegistrar_gaze,
    &gazePrefetcherRegistrar_sms,
    &gazePrefetcherRegistrar_bingo,
    &gazePrefetcherRegistrar_dspatch,
    &gazePrefetcherRegistrar_pmp,
    &gazePrefetcherRegistrar_ipcp,
    &gazePrefetcherRegistrar_spp_ppf,
    &gazePrefetcherRegistrar_spp,
    &gazePrefetcherRegistrar_vberti,
    &gazePrefetcherRegistrar_ip_stride,
};

constexpr size_t kSchemeAnchorCount =
    sizeof(kSchemeAnchors) / sizeof(kSchemeAnchors[0]);

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const auto &n : names) {
        if (!out.empty())
            out += ", ";
        out += n;
    }
    return out;
}

std::vector<std::string>
declaredOptionNames(const PrefetcherDescriptor &desc)
{
    std::vector<std::string> names;
    for (const auto &o : desc.options)
        names.push_back(o.name);
    return names;
}

std::vector<std::string>
registeredNames()
{
    std::vector<std::string> names;
    for (const auto *d : PrefetcherRegistry::instance().all())
        names.push_back(d->name);
    return names;
}

/** One "key[=value]" token of a spec, in spelling order. */
struct SpecToken
{
    std::string key;
    std::string value;
    bool hasValue = false;
};

/** Split "name[:key[=value]]*" without any validation. */
void
splitSpec(const std::string &text, std::string *name,
          std::vector<SpecToken> *tokens)
{
    size_t pos = text.find(':');
    *name = text.substr(0, pos);
    while (pos != std::string::npos) {
        size_t next = text.find(':', pos + 1);
        std::string tok = text.substr(pos + 1,
                                      next == std::string::npos
                                          ? std::string::npos
                                          : next - pos - 1);
        SpecToken t;
        size_t eq = tok.find('=');
        if (eq == std::string::npos) {
            t.key = tok;
        } else {
            t.key = tok.substr(0, eq);
            t.value = tok.substr(eq + 1);
            t.hasValue = true;
        }
        tokens->push_back(std::move(t));
        pos = next;
    }
}

/**
 * Strict decimal parse for option values: digits only, no sign, no
 * exponent, within [schema.min, schema.max], power of two when the
 * schema demands it (0 is exempt: it is only reachable when the
 * schema's range admits it as an "auto" sentinel).
 */
uint64_t
parseUintOption(const PrefetcherDescriptor &desc, const OptionSchema &os,
                const std::string &value, const std::string &spec_text)
{
    bool digits_only = !value.empty();
    for (char c : value)
        digits_only = digits_only && c >= '0' && c <= '9';
    errno = 0;
    char *end = nullptr;
    unsigned long long n = std::strtoull(value.c_str(), &end, 10);
    if (!digits_only || (end && *end != '\0') || errno == ERANGE)
        GAZE_FATAL("prefetcher '", desc.name, "': option '", os.name,
                   "' wants an unsigned integer, got '", value,
                   "' in spec '", spec_text, "'");
    if (n < os.min || n > os.max)
        GAZE_FATAL("prefetcher '", desc.name, "': option '", os.name,
                   "' out of range in spec '", spec_text, "': ", n,
                   " (want ", os.min, "..", os.max, ")");
    if (os.pow2 && n != 0 && !isPowerOfTwo(n))
        GAZE_FATAL("prefetcher '", desc.name, "': option '", os.name,
                   "' must be a power of two in spec '", spec_text,
                   "', got ", n);
    return n;
}

} // namespace

// ------------------------------------------------------- OptionSchema

const char *
optionTypeName(OptionType type)
{
    switch (type) {
      case OptionType::Flag:
        return "flag";
      case OptionType::Uint:
        return "uint";
      case OptionType::Enum:
        return "enum";
    }
    return "?";
}

OptionSchema
OptionSchema::flag(std::string name, std::string doc)
{
    OptionSchema os;
    os.name = std::move(name);
    os.type = OptionType::Flag;
    os.doc = std::move(doc);
    return os;
}

OptionSchema
OptionSchema::uintRange(std::string name, uint64_t dflt, uint64_t min,
                        uint64_t max, std::string doc, bool pow2)
{
    OptionSchema os;
    os.name = std::move(name);
    os.type = OptionType::Uint;
    os.doc = std::move(doc);
    os.min = min;
    os.max = max;
    os.pow2 = pow2;
    os.uintDefault = dflt;
    return os;
}

OptionSchema
OptionSchema::enumOf(std::string name, std::string dflt,
                     std::vector<std::string> values, std::string doc)
{
    OptionSchema os;
    os.name = std::move(name);
    os.type = OptionType::Enum;
    os.doc = std::move(doc);
    os.enumValues = std::move(values);
    os.enumDefault = std::move(dflt);
    return os;
}

std::string
OptionSchema::defaultText() const
{
    switch (type) {
      case OptionType::Flag:
        return "";
      case OptionType::Uint:
        return std::to_string(uintDefault);
      case OptionType::Enum:
        return enumDefault;
    }
    return "";
}

// -------------------------------------------------------- SpecOptions

SpecOptions::SpecOptions(const PrefetcherDescriptor &desc_,
                         // gaze-lint: allow(hot-container): build time
                         const std::map<std::string, std::string> &values_)
    : desc(&desc_), values(&values_)
{
}

const OptionSchema &
SpecOptions::schema(const std::string &name, OptionType type) const
{
    const OptionSchema *os = desc->findOption(name);
    GAZE_ASSERT(os, "prefetcher '", desc->name,
                "' build fn asked for undeclared option '", name, "'");
    GAZE_ASSERT(os->type == type, "prefetcher '", desc->name,
                "' build fn asked for option '", name, "' as ",
                optionTypeName(type), " but it is declared ",
                optionTypeName(os->type));
    return *os;
}

bool
SpecOptions::flag(const std::string &name) const
{
    schema(name, OptionType::Flag);
    return values->count(name) > 0;
}

uint64_t
SpecOptions::num(const std::string &name) const
{
    const OptionSchema &os = schema(name, OptionType::Uint);
    auto it = values->find(name);
    if (it == values->end())
        return os.uintDefault;
    // Values were range/shape-checked when the spec was resolved.
    return std::strtoull(it->second.c_str(), nullptr, 10);
}

std::string
SpecOptions::str(const std::string &name) const
{
    const OptionSchema &os = schema(name, OptionType::Enum);
    auto it = values->find(name);
    return it == values->end() ? os.enumDefault : it->second;
}

// ----------------------------------------------- descriptor/registrar

const OptionSchema *
PrefetcherDescriptor::findOption(const std::string &option_name) const
{
    for (const auto &o : options)
        if (o.name == option_name)
            return &o;
    return nullptr;
}

const PrefetcherRegistrar *&
PrefetcherRegistrar::chain()
{
    static const PrefetcherRegistrar *head = nullptr;
    return head;
}

PrefetcherRegistrar::PrefetcherRegistrar(DescriptorFn fn_) : fn(fn_)
{
    next = chain();
    chain() = this;
}

// ----------------------------------------------------------- registry

PrefetcherRegistry::PrefetcherRegistry()
{
    size_t chained = 0;
    for (const PrefetcherRegistrar *r = PrefetcherRegistrar::chain();
         r; r = r->next) {
        ++chained;
        auto desc = std::make_unique<PrefetcherDescriptor>(r->fn());
        GAZE_ASSERT(!desc->name.empty(),
                    "prefetcher descriptor without a name");
        GAZE_ASSERT(desc->build != nullptr, "prefetcher '", desc->name,
                    "' registered without a build function");
        for (const auto &os : desc->options) {
            GAZE_ASSERT(!os.name.empty(), "prefetcher '", desc->name,
                        "' declares an unnamed option");
            GAZE_ASSERT(desc->findOption(os.name) == &os,
                        "prefetcher '", desc->name,
                        "' declares option '", os.name, "' twice");
            if (os.type == OptionType::Uint)
                GAZE_ASSERT(os.uintDefault >= os.min
                                && os.uintDefault <= os.max,
                            "prefetcher '", desc->name, "' option '",
                            os.name, "' default outside its range");
            if (os.type == OptionType::Enum) {
                GAZE_ASSERT(!os.enumValues.empty(), "prefetcher '",
                            desc->name, "' option '", os.name,
                            "' declares no enum values");
                GAZE_ASSERT(std::find(os.enumValues.begin(),
                                      os.enumValues.end(),
                                      os.enumDefault)
                                != os.enumValues.end(),
                            "prefetcher '", desc->name, "' option '",
                            os.name,
                            "' default outside its enum values");
            }
        }
        std::vector<std::string> keys = desc->aliases;
        keys.push_back(desc->name);
        for (const auto &key : keys) {
            bool fresh = byName.emplace(key, desc.get()).second;
            GAZE_ASSERT(fresh,
                        "prefetcher name/alias '", key,
                        "' registered twice");
        }
        descriptors.push_back(std::move(desc));
    }
    // Walking the anchor array here is what forces the compiler to
    // emit it (and its relocations): a merely-declared const array in
    // an anonymous namespace would be discarded as unused, no scheme
    // object file would be pulled into the link, and the chain would
    // be empty.
    for (const PrefetcherRegistrar *anchor : kSchemeAnchors) {
        bool found = false;
        for (const PrefetcherRegistrar *r =
                 PrefetcherRegistrar::chain();
             r; r = r->next)
            found = found || r == anchor;
        GAZE_ASSERT(found,
                    "anchored prefetcher registrar missing from the "
                    "chain (static-init did not run?)");
    }
    GAZE_ASSERT(chained == kSchemeAnchorCount,
                "prefetcher registrar chain has ", chained,
                " entries but registry.cc anchors ", kSchemeAnchorCount,
                " — register the scheme AND anchor it");
}

const PrefetcherRegistry &
PrefetcherRegistry::instance()
{
    static PrefetcherRegistry registry;
    return registry;
}

const PrefetcherDescriptor *
PrefetcherRegistry::find(const std::string &name) const
{
    auto it = byName.find(name);
    return it == byName.end() ? nullptr : it->second;
}

std::vector<const PrefetcherDescriptor *>
PrefetcherRegistry::all() const
{
    std::vector<const PrefetcherDescriptor *> out;
    for (const auto &d : descriptors)
        out.push_back(d.get());
    std::sort(out.begin(), out.end(),
              [](const PrefetcherDescriptor *a,
                 const PrefetcherDescriptor *b) {
                  return a->name < b->name;
              });
    return out;
}

// --------------------------------------------------- canonicalization

std::unique_ptr<Prefetcher>
CanonicalSpec::build() const
{
    if (!desc)
        return nullptr;
    return desc->build(SpecOptions(*desc, options));
}

CanonicalSpec
resolvePrefetcherSpec(const std::string &spec_text)
{
    CanonicalSpec canon;
    canon.text = "none";
    if (spec_text.empty() || spec_text == "none")
        return canon;

    std::string name;
    std::vector<SpecToken> tokens;
    splitSpec(spec_text, &name, &tokens);

    const PrefetcherDescriptor *desc =
        PrefetcherRegistry::instance().find(name);
    if (!desc)
        GAZE_FATAL("unknown prefetcher '", name, "' in spec '",
                   spec_text, "' (known: ",
                   joinNames(registeredNames()),
                   "; see gaze_sim --list-prefetchers)");
    canon.desc = desc;

    // Seen-keys are tracked separately from canon.options: a
    // default-valued occurrence is elided from the canonical form but
    // must still arm the duplicate check ("gaze:n=2:n=4" is a
    // contradiction, not a spelling of n=4).
    std::set<std::string> seen;
    for (const auto &tok : tokens) {
        const OptionSchema *os = desc->findOption(tok.key);
        if (!os)
            GAZE_FATAL("prefetcher '", desc->name,
                       "': unknown option '", tok.key, "' in spec '",
                       spec_text, "' (options: ",
                       joinNames(declaredOptionNames(*desc)), ")");
        if (!seen.insert(os->name).second)
            GAZE_FATAL("prefetcher '", desc->name, "': option '",
                       os->name, "' given twice in spec '", spec_text,
                       "'");
        switch (os->type) {
          case OptionType::Flag: {
            if (tok.hasValue)
                GAZE_FATAL("prefetcher '", desc->name, "': option '",
                           os->name,
                           "' is a flag and takes no value in spec '",
                           spec_text, "'");
            canon.options[os->name] = "1";
            break;
          }
          case OptionType::Uint: {
            if (!tok.hasValue)
                GAZE_FATAL("prefetcher '", desc->name, "': option '",
                           os->name, "' needs =N in spec '", spec_text,
                           "'");
            uint64_t n =
                parseUintOption(*desc, *os, tok.value, spec_text);
            if (n != os->uintDefault)
                canon.options[os->name] = std::to_string(n);
            break;
          }
          case OptionType::Enum: {
            if (!tok.hasValue)
                GAZE_FATAL("prefetcher '", desc->name, "': option '",
                           os->name, "' needs =VALUE in spec '",
                           spec_text, "'");
            if (std::find(os->enumValues.begin(), os->enumValues.end(),
                          tok.value)
                == os->enumValues.end())
                GAZE_FATAL("prefetcher '", desc->name,
                           "': unknown value '", tok.value,
                           "' for option '", os->name, "' in spec '",
                           spec_text, "' (one of: ",
                           joinNames(os->enumValues), ")");
            if (tok.value != os->enumDefault)
                canon.options[os->name] = tok.value;
            break;
          }
        }
    }

    // canon.options is a name-sorted map with defaults already
    // elided, so serializing it in order IS the canonical spelling.
    std::ostringstream text;
    text << desc->name;
    for (const auto &kv : canon.options) {
        const OptionSchema *os = desc->findOption(kv.first);
        text << ':' << kv.first;
        if (os->type != OptionType::Flag)
            text << '=' << kv.second;
    }
    canon.text = text.str();
    return canon;
}

std::string
canonicalPrefetcherSpec(const std::string &spec_text)
{
    return resolvePrefetcherSpec(spec_text).text;
}

std::vector<std::string>
canonicalizeSpecList(const std::vector<std::string> &specs,
                     const char *context)
{
    std::vector<std::string> canonical;
    for (const auto &spec : specs) {
        std::string canon = canonicalPrefetcherSpec(spec);
        if (std::find(canonical.begin(), canonical.end(), canon)
            != canonical.end()) {
            GAZE_WARN(context, ": prefetcher '", spec,
                      "' duplicates canonical spec '", canon,
                      "'; keeping one");
            continue;
        }
        canonical.push_back(std::move(canon));
    }
    return canonical;
}

// ------------------------------------------------------ introspection

std::string
renderPrefetcherList(bool json)
{
    auto descs = PrefetcherRegistry::instance().all();

    // Building each scheme proves the whole descriptor is usable: the
    // canonical name resolves, the defaults validate, and the
    // instance reports its modeled storage.
    auto storageKib = [](const PrefetcherDescriptor *d) {
        return double(resolvePrefetcherSpec(d->name).build()
                          ->storageBits())
               / 8.0 / 1024.0;
    };

    if (json) {
        JsonWriter j;
        j.beginObject();
        j.key("prefetchers").beginArray();
        for (const auto *d : descs) {
            j.beginObject();
            j.key("name").value(d->name);
            j.key("aliases").beginArray();
            for (const auto &a : d->aliases)
                j.value(a);
            j.endArray();
            j.key("doc").value(d->doc);
            j.key("canonical").value(canonicalPrefetcherSpec(d->name));
            j.key("storage_kib").value(storageKib(d));
            j.key("options").beginArray();
            for (const auto &os : d->options) {
                j.beginObject();
                j.key("name").value(os.name);
                j.key("type").value(optionTypeName(os.type));
                j.key("doc").value(os.doc);
                if (os.type == OptionType::Uint) {
                    j.key("default").value(os.uintDefault);
                    j.key("min").value(os.min);
                    j.key("max").value(os.max);
                    j.key("pow2").value(os.pow2);
                } else if (os.type == OptionType::Enum) {
                    j.key("default").value(os.enumDefault);
                    j.key("values").beginArray();
                    for (const auto &v : os.enumValues)
                        j.value(v);
                    j.endArray();
                } else {
                    j.key("default").value(false);
                }
                j.endObject();
            }
            j.endArray();
            j.endObject();
        }
        j.endArray();
        j.endObject();
        return j.str() + "\n";
    }

    std::ostringstream os;
    os << "registered prefetchers (" << descs.size()
       << " schemes; spec grammar \"name[:option[=value]]*\"):\n";
    for (const auto *d : descs) {
        os << "\n  " << d->name;
        for (const auto &a : d->aliases)
            os << " (alias: " << a << ")";
        char kib[32];
        std::snprintf(kib, sizeof(kib), "%.2f", storageKib(d));
        os << "  [" << kib << " KiB]\n      " << d->doc << "\n";
        for (const auto &opt : d->options) {
            os << "      " << opt.name;
            switch (opt.type) {
              case OptionType::Flag:
                os << "  (flag)";
                break;
              case OptionType::Uint:
                os << "=N  (uint " << opt.min << ".." << opt.max
                   << (opt.pow2 ? ", pow2" : "") << "; default "
                   << opt.uintDefault << ")";
                break;
              case OptionType::Enum:
                os << "=V  (one of " << joinNames(opt.enumValues)
                   << "; default " << opt.enumDefault << ")";
                break;
            }
            os << "\n          " << opt.doc << "\n";
        }
    }
    return os.str();
}

} // namespace gaze
