/**
 * @file
 * The Prefetch Buffer (PB) shared by all bit-pattern spatial prefetchers
 * (SMS, Bingo, DSPatch, PMP, Gaze). Per the paper (§IV-A2) the PBs of
 * all evaluated spatial schemes are fine-tuned and uniform, so one
 * implementation serves everyone.
 *
 * The PB stores, per region, a 2-bit prefetch state for each block
 * offset (none / to-L1D / to-L2C / LLC-unused) and drains a bounded
 * number of prefetches per cycle, which both smooths issue bandwidth
 * and lets later pattern *promotions* (Gaze's stage 2) merge into a
 * pending pattern before it is issued.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/lru_table.hh"
#include "common/ring_buffer.hh"
#include "common/types.hh"

namespace gaze
{

/** Per-offset prefetch target level (2-bit state in Table I). */
enum class PfLevel : uint8_t
{
    None = 0,
    L1 = 1,
    L2 = 2,
    Llc = 3 ///< representable but unused, as in the paper
};

/**
 * Merge two target levels: a block requested for L1 by one pattern and
 * L2 by another is prefetched to L1 (promotion keeps the stronger).
 */
constexpr PfLevel
mergePfLevel(PfLevel a, PfLevel b)
{
    if (a == PfLevel::None)
        return b;
    if (b == PfLevel::None)
        return a;
    return static_cast<uint8_t>(a) <= static_cast<uint8_t>(b) ? a : b;
}

/** A region's prefetch pattern: one PfLevel per block offset. */
using PfPattern = std::vector<PfLevel>;

struct PrefetchBufferParams
{
    uint32_t entries = 32;
    uint32_t ways = 8;

    /** Prefetch issue bandwidth per cycle. */
    uint32_t issuePerCycle = 2;

    /** Blocks per region (64 for 4KB regions). */
    uint32_t blocksPerRegion = 64;

    /** Address space of the stored regions (affects issue addresses). */
    bool virtualSpace = true;
};

/**
 * The buffer itself. The owner drains it each cycle via drain(),
 * providing the issue callable so the PB stays decoupled from the
 * Prefetcher base class.
 */
class PrefetchBuffer
{
  public:
    explicit PrefetchBuffer(const PrefetchBufferParams &params);

    /**
     * Install (or merge into) the pattern for the region based at
     * @p region_base. @p start_offset biases issue order: blocks at
     * and after it go first (forward-first), which is what streaming
     * wants. Offsets whose level is None are ignored.
     */
    void install(Addr region_base, const PfPattern &pattern,
                 uint32_t start_offset);

    /**
     * A demand touched (region, offset): cancel the pending prefetch
     * for that block — issuing it now would be pure overhead.
     */
    void onDemand(Addr region_base, uint32_t offset);

    /**
     * Issue up to issuePerCycle pending prefetches through @p issue,
     * a callable bool(Addr addr, uint32_t fill_level, bool virt).
     * Returns the number issued. Rejected issues (queue full) stay
     * pending.
     */
    template <typename IssueFn>
    uint32_t
    drain(IssueFn &&issue)
    {
        uint32_t issued = 0;
        while (issued < cfg.issuePerCycle && !issueQueue.empty()) {
            Addr base = issueQueue.front();
            Entry *e = table.find(setOf(base), base, /*touch=*/false);
            if (!e || e->pending == 0) {
                issueQueue.pop_front();
                continue;
            }
            bool progressed = false;
            while (issued < cfg.issuePerCycle && e->pending > 0) {
                uint32_t off = nextPendingOffset(*e);
                PfLevel lvl = e->pattern[off];
                Addr target = base + Addr(off) * blockSize;
                uint32_t fill = lvl == PfLevel::L1 ? 1u : 2u;
                if (!issue(target, fill, cfg.virtualSpace))
                    return issued; // PQ full; retry next cycle
                e->pattern[off] = PfLevel::None;
                --e->pending;
                ++issued;
                progressed = true;
            }
            if (e->pending == 0)
                issueQueue.pop_front();
            if (!progressed)
                break;
        }
        return issued;
    }

    /** Pending prefetches across all regions (tests). */
    size_t pendingCount() const;

    /**
     * True while drain() could still make progress (or pop stale
     * queue entries): the owner's busy() signal for the event engine.
     */
    bool drainPending() const { return !issueQueue.empty(); }

    /** Paper Table I storage: tag+LRU+2b/offset per entry. */
    uint64_t storageBits() const;

    const PrefetchBufferParams &params() const { return cfg; }

  private:
    struct Entry
    {
        PfPattern pattern;
        uint32_t pending = 0;
        uint32_t cursor = 0; ///< next offset to consider, wraps
    };

    uint64_t setOf(Addr region_base) const;
    uint32_t nextPendingOffset(Entry &e) const;

    PrefetchBufferParams cfg;
    LruTable<Entry> table;
    RingBuffer<Addr> issueQueue;
};

} // namespace gaze
