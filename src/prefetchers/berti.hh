/**
 * @file
 * Berti / vBerti: per-PC timely local-delta prefetching (MICRO'22).
 *
 * Berti learns, for each load PC, which block-granularity deltas have
 * historically been *timely*: when a demand fill completes with fetch
 * latency L, any earlier access by the same PC that happened at least
 * L cycles before the fill could have prefetched this block in time,
 * so the delta between the two addresses earns a timely hit. Deltas
 * whose hit ratio clears a high threshold are issued to L1D on every
 * access by that PC; medium-confidence deltas go to L2C.
 *
 * This is the enhanced vBerti the paper evaluates: it operates on
 * virtual addresses and may cross 4KB page boundaries, restricted to
 * eight virtual pages (four per direction) as §IV-A2 describes.
 *
 * Berti has no region-activation gating, so it re-issues prefetches
 * for blocks already resident in the L1D; those redundant requests
 * occupy PQ slots and are dropped on tag hit — the exact effect the
 * paper's §IV-B3 comparative study attributes its losses to.
 */

#pragma once

#include <array>
#include <cstdint>
#include <deque>

#include "common/lru_table.hh"
#include "sim/prefetcher.hh"

namespace gaze
{

struct BertiParams
{
    /** Per-PC delta table geometry (2.55KB budget in Table IV). */
    uint32_t tableSets = 16;
    uint32_t tableWays = 4;
    uint32_t deltasPerPc = 16;

    /** Recent-access history searched for timely candidates. */
    uint32_t historySize = 512;

    /**
     * Demand fills per confidence window before statuses are
     * re-evaluated (confidence = timely hits / fills, i.e. the share
     * of misses the delta would have covered in time).
     */
    uint32_t windowFills = 16;

    /** Timely predecessors credited per fill. */
    uint32_t creditsPerFill = 2;

    double l1Confidence = 0.75;
    double l2Confidence = 0.50;

    /** Cross-page reach in 4KB virtual pages, per direction. */
    uint32_t pageReach = 4;

    /** Deltas issued per trigger access (the most confident first). */
    uint32_t maxIssuePerAccess = 4;

    /**
     * §IV-B3's "Oracle vBerti": consult the L1D tag array before
     * issuing and drop prefetches whose block is already resident.
     * Real Berti cannot do this check; the paper uses the oracle to
     * quantify how much its redundant prefetches cost (bwaves_s went
     * 2.12 -> 2.65) and to show it is no panacea (GemsFDTD -4.2%).
     */
    bool oracleFilter = false;
};

/** vBerti: virtual-address timely local deltas. */
class BertiPrefetcher : public Prefetcher
{
  public:
    explicit BertiPrefetcher(const BertiParams &params = {});

    std::string
    name() const override
    {
        return cfg.oracleFilter ? "oracle_vberti" : "vberti";
    }

    void onAccess(const DemandAccess &access) override;
    void onFill(const FillEvent &fill) override;
    uint64_t storageBits() const override;

    /** Redundant prefetches suppressed by the oracle filter. */
    uint64_t oracleDropCount() const { return oracleDrops; }

  private:
    struct DeltaStat
    {
        int32_t delta = 0;
        uint16_t hits = 0;     ///< timely hits this window
        uint8_t status = 0;    ///< 0 none, 1 L2, 2 L1 (from last window)
    };

    struct PcEntry
    {
        std::array<DeltaStat, 16> deltas{};
        uint16_t windowFillCount = 0; ///< demand fills this window
    };

    struct HistoryRecord
    {
        PC pc = 0;
        Addr block = 0; ///< virtual block number
        Cycle cycle = 0;
    };

    PcEntry *findPc(PC pc, bool alloc);
    void creditDelta(PcEntry &e, int32_t delta);
    void closeWindow(PcEntry &e);

    BertiParams cfg;
    LruTable<PcEntry> table;
    std::deque<HistoryRecord> history;
    uint64_t oracleDrops = 0;
};

} // namespace gaze
