#include "prefetchers/bingo.hh"

#include <vector>

#include "prefetchers/registry.hh"

namespace gaze
{

BingoPrefetcher::BingoPrefetcher(const BingoParams &params)
    : SpatialPatternPrefetcher(params.base), cfg(params),
      pht(params.phtSets, params.phtWays)
{
}

uint64_t
BingoPrefetcher::shortKey(const RegionInfo &info) const
{
    // Short event: PC + Offset.
    return mix64(info.triggerPc) ^ (uint64_t(info.trigger) << 48);
}

uint64_t
BingoPrefetcher::longKey(const RegionInfo &info) const
{
    // Long event: PC + full trigger block address.
    return mix64(info.triggerPc * 0x9e3779b97f4a7c15ULL
                 + info.triggerAddr);
}

void
BingoPrefetcher::predictOnTrigger(const RegionInfo &info)
{
    uint64_t skey = shortKey(info);
    uint64_t lkey = longKey(info);
    uint64_t set = skey & (pht.sets() - 1);

    // Pass 1: exact long-event match wins outright (TAGE-style).
    Entry *exact_entry = pht.find(set, lkey);
    const Bitset *exact = exact_entry ? &exact_entry->footprint : nullptr;
    std::vector<const Bitset *> approx;
    if (!exact) {
        pht.forEach([&](uint64_t s, uint64_t, Entry &e) {
            if (s == set && e.shortTag == skey)
                approx.push_back(&e.footprint);
        });
    }

    PfPattern pat(regionBlocks(), PfLevel::None);
    if (exact) {
        ++exactHits;
        for (size_t b = exact->findFirst(); b < exact->size();
             b = exact->findNext(b + 1))
            pat[b] = PfLevel::L1;
    } else if (!approx.empty()) {
        ++approxHits;
        std::vector<uint32_t> votes(regionBlocks(), 0);
        for (const Bitset *fp : approx)
            for (size_t b = fp->findFirst(); b < fp->size();
                 b = fp->findNext(b + 1))
                ++votes[b];
        double total = double(approx.size());
        for (uint32_t b = 0; b < regionBlocks(); ++b) {
            double share = votes[b] / total;
            if (share >= cfg.l1VoteShare)
                pat[b] = PfLevel::L1;
            else if (share >= cfg.l2VoteShare)
                pat[b] = PfLevel::L2;
        }
    } else {
        return;
    }
    installPattern(info, std::move(pat));
}

void
BingoPrefetcher::learnOnEnd(const RegionInfo &info)
{
    uint64_t skey = shortKey(info);
    uint64_t set = skey & (pht.sets() - 1);

    // Same long event overwrites in place (LruTable::insert semantics);
    // a new long event takes a fresh way, so several patterns sharing
    // one short event coexist — the substrate of approximate voting.
    Entry e;
    e.shortTag = skey;
    e.footprint = info.footprint;
    pht.insert(set, longKey(info), std::move(e));
}

uint64_t
BingoPrefetcher::storageBits() const
{
    // Entry: short tag (16b) + long tag (24b) + LRU (4b) + footprint.
    uint64_t pht_bits = uint64_t(cfg.phtSets) * cfg.phtWays
                        * (16 + 24 + 4 + regionBlocks());
    uint64_t ft_bits = 64ULL * (36 + 3 + 12 + 6);
    uint64_t at_bits = 64ULL * (36 + 3 + 12 + regionBlocks());
    uint64_t pb_bits = uint64_t(baseParams().pbEntries)
                       * (36 + 3 + 2 * regionBlocks());
    return pht_bits + ft_bits + at_bits + pb_bits;
}

GAZE_REGISTER_PREFETCHER(bingo)
{
    PrefetcherDescriptor d;
    d.name = "bingo";
    d.doc = "Bingo (HPCA'19): exact long-event match to L1D, voted "
            "approximate match split across L1/L2";
    d.options = {
        OptionSchema::uintRange(
            "region", 2048, 2 * blockSize, 1u << 20,
            "spatial region size in bytes (Table IV uses 2KB)", true),
        OptionSchema::uintRange(
            "phtsets", 1024, 1, 1u << 20,
            "PHT sets (Table IV's enhanced 16k-entry configuration)",
            true),
        OptionSchema::uintRange("phtways", 16, 1, 4096, "PHT ways"),
    };
    d.build = [](const SpecOptions &o) -> std::unique_ptr<Prefetcher> {
        BingoParams cfg;
        cfg.base.regionSize = o.num("region");
        cfg.phtSets = static_cast<uint32_t>(o.num("phtsets"));
        cfg.phtWays = static_cast<uint32_t>(o.num("phtways"));
        return std::make_unique<BingoPrefetcher>(cfg);
    };
    return d;
}

} // namespace gaze
