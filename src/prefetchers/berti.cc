#include "prefetchers/berti.hh"

#include "prefetchers/registry.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/cache.hh"
#include "sim/vmem.hh"

namespace gaze
{

BertiPrefetcher::BertiPrefetcher(const BertiParams &params)
    : cfg(params), table(params.tableSets, params.tableWays)
{
}

BertiPrefetcher::PcEntry *
BertiPrefetcher::findPc(PC pc, bool alloc)
{
    uint64_t h = mix64(pc);
    uint64_t set = h & (table.sets() - 1);
    uint64_t tag = h >> 8;
    PcEntry *e = table.find(set, tag);
    if (!e && alloc) {
        table.insert(set, tag, PcEntry{});
        e = table.find(set, tag);
    }
    return e;
}

void
BertiPrefetcher::creditDelta(PcEntry &e, int32_t delta)
{
    for (auto &d : e.deltas) {
        if (d.hits > 0 && d.delta == delta) {
            ++d.hits;
            return;
        }
    }
    // New candidate: take an empty slot, or the weakest non-promoted
    // slot (promoted deltas are protected within the window).
    DeltaStat *victim = nullptr;
    for (auto &d : e.deltas) {
        if (d.hits == 0 && d.status == 0) {
            victim = &d;
            break;
        }
        if (d.status == 0 && (!victim || d.hits < victim->hits))
            victim = &d;
    }
    if (victim) {
        victim->delta = delta;
        victim->hits = 1;
    }
}

void
BertiPrefetcher::closeWindow(PcEntry &e)
{
    // Convert this window's timely-hit-per-fill ratios into status.
    double window = double(cfg.windowFills);
    for (auto &d : e.deltas) {
        double ratio = d.hits / window;
        if (d.hits == 0 && d.status == 0)
            continue;
        if (ratio >= cfg.l1Confidence)
            d.status = 2;
        else if (ratio >= cfg.l2Confidence)
            d.status = 1;
        else
            d.status = 0;
        d.hits = 0;
    }
    e.windowFillCount = 0;
}

void
BertiPrefetcher::onAccess(const DemandAccess &access)
{
    if (access.type != AccessType::Load)
        return;

    Addr block = blockNumber(access.vaddr);

    // Record into the shared history used for timeliness search.
    history.push_back(HistoryRecord{access.pc, block, access.cycle});
    if (history.size() > cfg.historySize)
        history.pop_front();

    PcEntry *e = findPc(access.pc, /*alloc=*/true);

    // Issue the learned deltas, most aggressive first. Berti issues on
    // every access with no residency check: redundant targets are
    // dropped at the L1D tag, but they still consumed PQ slots.
    struct Cand
    {
        int32_t delta;
        uint8_t status;
    };
    std::array<Cand, 16> cands;
    uint32_t n = 0;
    for (const auto &d : e->deltas)
        if (d.status > 0)
            cands[n++] = Cand{d.delta, d.status};
    std::sort(cands.begin(), cands.begin() + n,
              [](const Cand &a, const Cand &b) {
                  return a.status > b.status;
              });

    uint32_t issued = 0;
    int64_t max_reach = int64_t(cfg.pageReach) * int64_t(blocksPerPage);
    for (uint32_t i = 0; i < n && issued < cfg.maxIssuePerAccess; ++i) {
        int64_t target = int64_t(block) + cands[i].delta;
        if (target < 0)
            continue;
        if (std::llabs(int64_t(cands[i].delta)) > max_reach)
            continue; // beyond the eight-virtual-page restriction
        Addr vaddr = Addr(target) << blockShift;
        if (cfg.oracleFilter && context.cache && context.vmem) {
            // Oracle vBerti: peek at the L1D tags and drop redundant
            // requests before they occupy PQ slots.
            Addr paddr = context.vmem->translate(vaddr, context.cpu);
            if (context.cache->present(paddr)) {
                ++oracleDrops;
                continue;
            }
        }
        issuePrefetch(vaddr, cands[i].status == 2 ? levelL1 : levelL2,
                      /*virt=*/true);
        ++issued;
    }
}

void
BertiPrefetcher::onFill(const FillEvent &fill)
{
    if (fill.prefetch || fill.vaddr == 0)
        return;

    // A demand fill completed with latency `fill.latency`; the demand
    // itself was at (fill.cycle - latency). A prefetch issued at some
    // earlier access arrives `latency` after that access, so it beats
    // the demand only if the access was at least one full latency
    // before the demand: deadline = demand time - latency.
    Addr block = blockNumber(fill.vaddr);
    Cycle demand_time = fill.cycle >= fill.latency
                        ? fill.cycle - fill.latency : 0;
    Cycle deadline = demand_time >= fill.latency
                     ? demand_time - fill.latency : 0;
    int64_t max_reach = int64_t(cfg.pageReach) * int64_t(blocksPerPage);

    PcEntry *e = findPc(fill.pc, /*alloc=*/false);
    if (!e)
        return;

    // Scan newest-to-oldest for the nearest *timely* accesses by the
    // same PC ("local" deltas are within one PC's stream).
    uint32_t credited = 0;
    for (auto it = history.rbegin();
         it != history.rend() && credited < cfg.creditsPerFill; ++it) {
        if (it->cycle > deadline)
            continue; // too recent: a prefetch then would be late
        if (it->pc != fill.pc)
            continue;
        int64_t delta = int64_t(block) - int64_t(it->block);
        if (delta == 0)
            continue;
        if (std::llabs(delta) > max_reach)
            continue;
        creditDelta(*e, static_cast<int32_t>(delta));
        ++credited;
    }
    if (++e->windowFillCount >= cfg.windowFills)
        closeWindow(*e);
}

uint64_t
BertiPrefetcher::storageBits() const
{
    // Entry: tag(12) + 16 deltas x (delta 13b + hits 5b + status 2b)
    // + window count (5b). The access-history/latency tracking is the
    // L1D-line extension Berti adds (12b per line, §III-E), which the
    // paper accounts against the cache, not this table.
    uint64_t entry_bits = 12 + 16 * (13 + 5 + 2) + 5;
    return uint64_t(cfg.tableSets) * cfg.tableWays * entry_bits;
}

GAZE_REGISTER_PREFETCHER(vberti)
{
    PrefetcherDescriptor d;
    d.name = "vberti";
    d.aliases = {"berti"};
    d.doc = "Berti (MICRO'22) on virtual addresses: per-PC timely "
            "local deltas";
    d.options = {
        OptionSchema::flag(
            "oracle",
            "perfect duplicate filtering (upper-bound study used by "
            "the export oracle tests)"),
    };
    d.build = [](const SpecOptions &o) -> std::unique_ptr<Prefetcher> {
        BertiParams cfg;
        if (o.flag("oracle"))
            cfg.oracleFilter = true;
        return std::make_unique<BertiPrefetcher>(cfg);
    };
    return d;
}

} // namespace gaze
