/**
 * @file
 * DSPatch: Dual Spatial Pattern prefetcher (MICRO'19). Patterns are
 * characterized per trigger PC and stored rotated (anchored at the
 * trigger offset) so the same code touching different region positions
 * merges into one signature. Each PC keeps two patterns:
 *
 *  - CovP (coverage-biased): bitwise OR of observed footprints,
 *  - AccP (accuracy-biased): bitwise AND of observed footprints,
 *
 * and the DRAM bandwidth utilization picks between them at prediction
 * time: plentiful bandwidth -> CovP (go wide), scarce -> AccP (only
 * blocks every generation touched).
 */

#pragma once

#include "prefetchers/spatial_base.hh"

namespace gaze
{

struct DspatchParams
{
    SpatialBaseParams base; ///< 2KB regions, 64-entry PageBuffer

    /** Signature Pattern Table entries (Table IV: 256, per PC). */
    uint32_t sptSets = 64;
    uint32_t sptWays = 4;

    /** Bus utilization above which AccP is preferred. */
    double bwThreshold = 0.50;

    /** OR-merges before CovP is re-anchored to the latest footprint. */
    uint32_t covResetPeriod = 32;
};

/** DSPatch with bandwidth-aware dual-pattern selection. */
class DspatchPrefetcher : public SpatialPatternPrefetcher
{
  public:
    explicit DspatchPrefetcher(const DspatchParams &params = {});

    std::string name() const override { return "dspatch"; }
    uint64_t storageBits() const override;

    uint64_t covPredictions() const { return covUsed; }
    uint64_t accPredictions() const { return accUsed; }

  protected:
    void predictOnTrigger(const RegionInfo &info) override;
    void learnOnEnd(const RegionInfo &info) override;

    /** Virtual so tests can script the utilization signal. */
    virtual double busUtilization() const;

  private:
    struct Entry
    {
        Bitset covP{32};
        Bitset accP{32};
        uint32_t merges = 0;
    };

    /** Rotate so the trigger offset becomes bit 0 (anchoring). */
    Bitset rotateLeft(const Bitset &fp, uint32_t by) const;

    DspatchParams cfg;
    LruTable<Entry> spt;

    uint64_t covUsed = 0;
    uint64_t accUsed = 0;
};

} // namespace gaze
