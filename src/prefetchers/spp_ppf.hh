/**
 * @file
 * SPP (Signature Path Prefetcher, MICRO'16) with PPF (Perceptron-based
 * Prefetch Filtering, ISCA'19).
 *
 * SPP: each page's recent delta history is compressed into a
 * signature; the Pattern Table maps signatures to candidate deltas
 * with confidence counters. Prediction walks the signature path
 * lookahead-style, multiplying per-step confidence, until the path
 * confidence drops below threshold.
 *
 * PPF: every SPP proposal is scored by a perceptron over simple
 * features; proposals below the threshold are rejected. Accepted
 * prefetches are remembered so usefulness feedback (demand hit before
 * eviction vs. evicted untouched) can train the weights. The feature
 * set is reduced relative to the 39.3KB original (see DESIGN.md).
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/lru_table.hh"
#include "common/ring_buffer.hh"
#include "sim/mshr_table.hh"
#include "sim/prefetcher.hh"

namespace gaze
{

struct SppParams
{
    uint32_t stEntries = 256;  ///< signature table (pages tracked)
    uint32_t ptSets = 512;     ///< pattern table sets (per signature)
    uint32_t ptWays = 4;       ///< delta candidates per signature
    uint32_t cMax = 15;        ///< 4-bit confidence counters

    double fillThreshold = 0.90;  ///< path conf for L1 fills
    double pfThreshold = 0.25;    ///< minimum path conf to prefetch
    uint32_t maxDepth = 8;

    bool enablePpf = true;
    int32_t ppfThreshold = 0;       ///< accept when sum >= threshold
    int32_t ppfWeightMax = 31;      ///< 6-bit signed weights
    uint32_t ppfTableSize = 128;    ///< entries per feature table
    uint32_t ppfHistory = 1024;     ///< in-flight prefetch records
};

/** SPP-PPF attached at L1D (as the paper evaluates it). */
class SppPpfPrefetcher : public Prefetcher
{
  public:
    explicit SppPpfPrefetcher(const SppParams &params = {});

    std::string name() const override { return "spp_ppf"; }
    void onAccess(const DemandAccess &access) override;
    void onEvict(Addr paddr, Addr vaddr) override;
    uint64_t storageBits() const override;

    uint64_t proposals() const { return proposed; }
    uint64_t rejections() const { return rejected; }

  private:
    static constexpr uint32_t numFeatures = 6;

    struct StEntry
    {
        uint16_t signature = 0;
        uint16_t lastOffset = 0;
        bool valid = false;
    };

    struct PtDelta
    {
        int16_t delta = 0;
        uint8_t conf = 0;
    };

    struct PtEntry
    {
        std::array<PtDelta, 4> ways{};
        uint8_t total = 0;
    };

    using FeatureVec = std::array<uint16_t, numFeatures>;

    static uint16_t
    nextSignature(uint16_t sig, int16_t delta)
    {
        return static_cast<uint16_t>(((sig << 3)
                                      ^ uint16_t(delta & 0x7f)) & 0xfff);
    }

    void trainPt(uint16_t sig, int16_t delta);

    /** Perceptron score of a proposal; fills @p feats. */
    int32_t score(PC pc, Addr target_vaddr, uint16_t sig, int16_t delta,
                  uint32_t depth, double conf, FeatureVec &feats) const;

    void trainPerceptron(const FeatureVec &feats, bool useful);

    void recordPending(Addr block, const FeatureVec &feats);

    SppParams cfg;
    LruTable<StEntry> st;
    std::vector<PtEntry> pt;

    /** Perceptron weight tables, one per feature. */
    std::vector<std::vector<int32_t>> weights;

    /**
     * In-flight prefetches awaiting usefulness feedback: block ->
     * feature vector, bounded FIFO (a flat open-addressed table for
     * O(1) allocation-free lookup on the access path). The FIFO also
     * holds addresses whose map entry was consumed by feedback; those
     * stale slots still count toward the history bound, exactly as
     * the unordered_map version behaved.
     */
    MshrTable<FeatureVec> pending;
    RingBuffer<Addr> pendingFifo;

    uint64_t proposed = 0;
    uint64_t rejected = 0;
};

} // namespace gaze
