#include "prefetchers/sms.hh"

#include "prefetchers/registry.hh"

namespace gaze
{

const char *
smsEventSchemeName(SmsEventScheme scheme)
{
    switch (scheme) {
      case SmsEventScheme::Offset: return "offset";
      case SmsEventScheme::Pc: return "pc";
      case SmsEventScheme::PcOffset: return "pc+offset";
      case SmsEventScheme::PcAddr: return "pc+addr";
    }
    return "?";
}

SmsPrefetcher::SmsPrefetcher(const SmsParams &params)
    : SpatialPatternPrefetcher(params.base), cfg(params),
      pht(params.phtSets, params.phtWays)
{
}

std::string
SmsPrefetcher::name() const
{
    if (cfg.scheme == SmsEventScheme::PcOffset)
        return "sms";
    return std::string("sms_") + smsEventSchemeName(cfg.scheme);
}

uint64_t
SmsPrefetcher::eventKey(const RegionInfo &info) const
{
    switch (cfg.scheme) {
      case SmsEventScheme::Offset:
        return info.trigger;
      case SmsEventScheme::Pc:
        return mix64(info.triggerPc);
      case SmsEventScheme::PcOffset:
        return mix64(info.triggerPc) ^ (uint64_t(info.trigger) << 48);
      case SmsEventScheme::PcAddr:
        return mix64(info.triggerPc * 0x9e3779b97f4a7c15ULL
                     + info.triggerAddr);
    }
    return 0;
}

void
SmsPrefetcher::predictOnTrigger(const RegionInfo &info)
{
    uint64_t key = eventKey(info);
    const Bitset *fp = pht.find(key & (pht.sets() - 1), key);
    if (!fp)
        return;
    PfPattern pat(regionBlocks(), PfLevel::None);
    for (size_t b = fp->findFirst(); b < fp->size();
         b = fp->findNext(b + 1))
        pat[b] = PfLevel::L1;
    installPattern(info, std::move(pat));
}

void
SmsPrefetcher::learnOnEnd(const RegionInfo &info)
{
    uint64_t key = eventKey(info);
    pht.insert(key & (pht.sets() - 1), key, info.footprint);
}

uint64_t
SmsPrefetcher::storageBits() const
{
    // PHT entry: tag (16b effective) + LRU (4b) + bit vector.
    uint64_t pht_bits = uint64_t(cfg.phtSets) * cfg.phtWays
                        * (16 + 4 + regionBlocks());
    // FT/AT/PB roughly as in Gaze's Table I accounting, scaled to the
    // region size.
    uint64_t ft_bits = 64ULL * (36 + 3 + 12 + 6);
    uint64_t at_bits = 64ULL * (36 + 3 + 12 + regionBlocks());
    uint64_t pb_bits = uint64_t(baseParams().pbEntries)
                       * (36 + 3 + 2 * regionBlocks());
    return pht_bits + ft_bits + at_bits + pb_bits;
}

GAZE_REGISTER_PREFETCHER(sms)
{
    PrefetcherDescriptor d;
    d.name = "sms";
    d.doc = "Spatial Memory Streaming (ISCA'06) with the trigger "
            "event generalized over the Fig. 1 characterization "
            "schemes";
    d.options = {
        OptionSchema::enumOf(
            "scheme", "pc+offset",
            {"offset", "pc", "pc+offset", "pc+addr"},
            "PHT trigger event (Fig. 1 x-axis points; pc+offset is "
            "SMS proper)"),
        OptionSchema::uintRange(
            "phtsets", 0, 0, 1u << 20,
            "PHT sets; 0 = auto for the scheme (64 for offset/pc, "
            "1024 otherwise)",
            true),
        OptionSchema::uintRange(
            "phtways", 0, 0, 4096,
            "PHT ways; 0 = auto for the scheme (1 for offset, 4 for "
            "pc, 16 otherwise)"),
        OptionSchema::uintRange(
            "region", 2048, 2 * blockSize, 1u << 20,
            "spatial region size in bytes (Table IV uses 2KB)", true),
    };
    d.build = [](const SpecOptions &o) -> std::unique_ptr<Prefetcher> {
        SmsParams cfg;
        std::string scheme = o.str("scheme");
        // Per-scheme PHT geometry from the paper's Fig. 1 points,
        // unless the spec pins it explicitly.
        uint64_t auto_sets = 1024, auto_ways = 16;
        if (scheme == "offset") {
            cfg.scheme = SmsEventScheme::Offset;
            auto_sets = 64;
            auto_ways = 1;
        } else if (scheme == "pc") {
            cfg.scheme = SmsEventScheme::Pc;
            auto_sets = 64;
            auto_ways = 4;
        } else if (scheme == "pc+offset") {
            cfg.scheme = SmsEventScheme::PcOffset;
        } else {
            cfg.scheme = SmsEventScheme::PcAddr;
        }
        uint64_t sets = o.num("phtsets");
        uint64_t ways = o.num("phtways");
        cfg.phtSets = static_cast<uint32_t>(sets ? sets : auto_sets);
        cfg.phtWays = static_cast<uint32_t>(ways ? ways : auto_ways);
        cfg.base.regionSize = o.num("region");
        return std::make_unique<SmsPrefetcher>(cfg);
    };
    return d;
}

} // namespace gaze
