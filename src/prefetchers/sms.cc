#include "prefetchers/sms.hh"

namespace gaze
{

const char *
smsEventSchemeName(SmsEventScheme scheme)
{
    switch (scheme) {
      case SmsEventScheme::Offset: return "offset";
      case SmsEventScheme::Pc: return "pc";
      case SmsEventScheme::PcOffset: return "pc+offset";
      case SmsEventScheme::PcAddr: return "pc+addr";
    }
    return "?";
}

SmsPrefetcher::SmsPrefetcher(const SmsParams &params)
    : SpatialPatternPrefetcher(params.base), cfg(params),
      pht(params.phtSets, params.phtWays)
{
}

std::string
SmsPrefetcher::name() const
{
    if (cfg.scheme == SmsEventScheme::PcOffset)
        return "sms";
    return std::string("sms_") + smsEventSchemeName(cfg.scheme);
}

uint64_t
SmsPrefetcher::eventKey(const RegionInfo &info) const
{
    switch (cfg.scheme) {
      case SmsEventScheme::Offset:
        return info.trigger;
      case SmsEventScheme::Pc:
        return mix64(info.triggerPc);
      case SmsEventScheme::PcOffset:
        return mix64(info.triggerPc) ^ (uint64_t(info.trigger) << 48);
      case SmsEventScheme::PcAddr:
        return mix64(info.triggerPc * 0x9e3779b97f4a7c15ULL
                     + info.triggerAddr);
    }
    return 0;
}

void
SmsPrefetcher::predictOnTrigger(const RegionInfo &info)
{
    uint64_t key = eventKey(info);
    const Bitset *fp = pht.find(key & (pht.sets() - 1), key);
    if (!fp)
        return;
    PfPattern pat(regionBlocks(), PfLevel::None);
    for (size_t b = fp->findFirst(); b < fp->size();
         b = fp->findNext(b + 1))
        pat[b] = PfLevel::L1;
    installPattern(info, std::move(pat));
}

void
SmsPrefetcher::learnOnEnd(const RegionInfo &info)
{
    uint64_t key = eventKey(info);
    pht.insert(key & (pht.sets() - 1), key, info.footprint);
}

uint64_t
SmsPrefetcher::storageBits() const
{
    // PHT entry: tag (16b effective) + LRU (4b) + bit vector.
    uint64_t pht_bits = uint64_t(cfg.phtSets) * cfg.phtWays
                        * (16 + 4 + regionBlocks());
    // FT/AT/PB roughly as in Gaze's Table I accounting, scaled to the
    // region size.
    uint64_t ft_bits = 64ULL * (36 + 3 + 12 + 6);
    uint64_t at_bits = 64ULL * (36 + 3 + 12 + regionBlocks());
    uint64_t pb_bits = uint64_t(baseParams().pbEntries)
                       * (36 + 3 + 2 * regionBlocks());
    return pht_bits + ft_bits + at_bits + pb_bits;
}

} // namespace gaze
