/**
 * @file
 * Self-registering prefetcher registry with typed option schemas.
 *
 * Every scheme declares a PrefetcherDescriptor — canonical name,
 * aliases, a one-line doc string, the full option schema (each option
 * typed as flag / uint-with-range / enum-of-strings with a default
 * and its own doc line), and a build function — and registers it from
 * its own translation unit via GAZE_REGISTER_PREFETCHER. Everything
 * downstream is derived from the descriptors:
 *
 *  - construction (makePrefetcher in factory.hh) parses a
 *    "name[:option[=value]]*" spec, validates it against the schema
 *    (unknown scheme, unknown option, malformed or out-of-range
 *    value, unknown enum value, duplicated option: all fatal, naming
 *    the offending spec text), and calls the scheme's build function;
 *  - canonicalization rewrites any valid spelling into the one
 *    canonical form — alias resolved to the primary name, options
 *    sorted by name, values normalized, schema defaults elided — so
 *    equivalent spellings share baseline-cache and campaign-cache
 *    entries (harness/cell_key hashes canonical text only);
 *  - introspection (gaze_sim --list-prefetchers[=json], gaze_campaign
 *    describe) renders the scheme/option/type/default/doc table
 *    straight from the registry, so CLI help and README can never
 *    drift from the code.
 *
 * Build functions see options only through SpecOptions, which serves
 * the schema default for anything the spec did not say — a canonical
 * spec therefore builds a configuration identical to any of its
 * spellings.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/prefetcher.hh"

namespace gaze
{

/** Value shapes a spec option can declare. */
enum class OptionType
{
    Flag, ///< present/absent, never takes a value ("gaze:nostream")
    Uint, ///< strict decimal within a declared range ("gaze:n=2")
    Enum  ///< one of a declared string set ("sms:scheme=offset")
};

/** "flag" / "uint" / "enum" (the --list-prefetchers type column). */
const char *optionTypeName(OptionType type);

/** Declaration of one option: name, type, constraints, default, doc. */
struct OptionSchema
{
    std::string name;
    OptionType type = OptionType::Flag;
    std::string doc; ///< one-line help, rendered by --list-prefetchers

    /** Uint constraints and default (ignored for other types). */
    uint64_t min = 0;
    uint64_t max = UINT64_MAX;
    bool pow2 = false; ///< nonzero values must be powers of two
    uint64_t uintDefault = 0;

    /** Enum value set and default (ignored for other types). */
    std::vector<std::string> enumValues;
    std::string enumDefault;

    static OptionSchema flag(std::string name, std::string doc);
    static OptionSchema uintRange(std::string name, uint64_t dflt,
                                  uint64_t min, uint64_t max,
                                  std::string doc, bool pow2 = false);
    static OptionSchema enumOf(std::string name, std::string dflt,
                               std::vector<std::string> values,
                               std::string doc);

    /** The default as spec text ("" for flags, which default unset). */
    std::string defaultText() const;
};

struct PrefetcherDescriptor;

/**
 * Validated option values of one spec, as seen by a build function.
 * Lookups are checked against the schema: asking for an option the
 * descriptor never declared, or with the wrong type accessor, is a
 * panic (a bug in the scheme's registration, not user error). Options
 * the spec did not mention resolve to their schema default, so a
 * canonicalized spec (defaults elided) builds identically to the
 * spelling it came from.
 */
class SpecOptions
{
  public:
    SpecOptions(const PrefetcherDescriptor &desc,
                // gaze-lint: allow(hot-container): build time only
                const std::map<std::string, std::string> &values);

    /** Flag option: was it present? */
    bool flag(const std::string &name) const;

    /** Uint option: explicit value, or the schema default. */
    uint64_t num(const std::string &name) const;

    /** Enum option: explicit value, or the schema default. */
    std::string str(const std::string &name) const;

  private:
    const OptionSchema &schema(const std::string &name,
                               OptionType type) const;

    const PrefetcherDescriptor *desc;
    // gaze-lint: allow(hot-container): read at scheme build time only
    const std::map<std::string, std::string> *values;
};

/** Everything the registry knows about one scheme. */
struct PrefetcherDescriptor
{
    /** Canonical scheme name ("gaze", "vberti", ...). */
    std::string name;

    /** Accepted alternative spellings, canonicalized to @c name. */
    std::vector<std::string> aliases;

    /** One-line description for the introspection table. */
    std::string doc;

    /** Declared options, in display order. */
    std::vector<OptionSchema> options;

    /** Construct an instance from validated options. */
    std::function<std::unique_ptr<Prefetcher>(const SpecOptions &)> build;

    /** Schema for @p option_name, or nullptr when undeclared. */
    const OptionSchema *findOption(const std::string &option_name) const;
};

/**
 * One registered scheme. Define with GAZE_REGISTER_PREFETCHER in the
 * scheme's .cc file; the constructor links the registrar into a
 * global chain that PrefetcherRegistry materializes on first use (no
 * static-initialization-order dependence: descriptors are built
 * lazily, inside instance()).
 */
class PrefetcherRegistrar
{
  public:
    using DescriptorFn = PrefetcherDescriptor (*)();

    explicit PrefetcherRegistrar(DescriptorFn fn);

  private:
    friend class PrefetcherRegistry;

    DescriptorFn fn;
    const PrefetcherRegistrar *next;

    static const PrefetcherRegistrar *&chain();
};

/**
 * The process-wide scheme table, built from the registrar chain on
 * first use. Registration problems — duplicate names or aliases,
 * enum defaults outside the value set, uint defaults outside the
 * declared range — are panics: they are bugs in a scheme's
 * GAZE_REGISTER_PREFETCHER block, not user configuration errors.
 */
class PrefetcherRegistry
{
  public:
    static const PrefetcherRegistry &instance();

    /** Descriptor for a name or alias; nullptr when unknown. */
    const PrefetcherDescriptor *find(const std::string &name) const;

    /** Every descriptor, sorted by canonical name. */
    std::vector<const PrefetcherDescriptor *> all() const;

  private:
    PrefetcherRegistry();

    std::vector<std::unique_ptr<PrefetcherDescriptor>> descriptors;
    // gaze-lint: allow(hot-container): name lookup happens once per
    // spec parse; ordered iteration feeds the introspection table
    std::map<std::string, const PrefetcherDescriptor *> byName;
};

/**
 * A parsed, validated, normalized prefetcher spec. @c text is the one
 * canonical spelling: primary scheme name, options sorted by name,
 * uint values in plain decimal, schema defaults elided, flags bare.
 * "none" (or the empty spec) normalizes to desc == nullptr and text
 * "none".
 */
struct CanonicalSpec
{
    const PrefetcherDescriptor *desc = nullptr;

    /** Non-default options, keyed by name (flags map to "1"). */
    // gaze-lint: allow(hot-container): canonical spec state, built
    // once per run; sorted order defines the canonical spelling
    std::map<std::string, std::string> options;

    /** The canonical spec string (what cache keys embed). */
    std::string text;

    /** Construct the prefetcher (nullptr for "none"). */
    std::unique_ptr<Prefetcher> build() const;
};

/**
 * Parse + validate + canonicalize @p spec_text against the registry.
 * Fatal (with the offending spec text in the message) on an unknown
 * scheme, unknown option, flag given a value, missing/malformed/
 * out-of-range number, unknown enum value, or duplicated option.
 */
CanonicalSpec resolvePrefetcherSpec(const std::string &spec_text);

/** Shorthand: resolvePrefetcherSpec(@p spec_text).text. */
std::string canonicalPrefetcherSpec(const std::string &spec_text);

/**
 * Canonicalize a whole prefetcher axis: every spec is resolved (fatal
 * on any invalid one), and spellings whose canonical form already
 * appeared are dropped with a warning naming @p context — the first
 * spelling wins the slot. Shared by the gaze_sim flag parser and the
 * campaign spec loader so both front ends collapse equivalent
 * spellings identically.
 */
std::vector<std::string>
canonicalizeSpecList(const std::vector<std::string> &specs,
                     const char *context);

/**
 * The full registry as a human-readable table (@p json false) or as
 * one machine-readable JSON document (@p json true). Rendering builds
 * every scheme's default instance — the reported storage_kib comes
 * from a live storageBits() call — so producing this output also
 * round-trips every registered scheme through parse -> canonicalize
 * -> build, which check.sh uses as a registration smoke.
 */
std::string renderPrefetcherList(bool json);

} // namespace gaze

/**
 * Register a scheme: expands to a descriptor-factory definition whose
 * body follows the macro, plus an externally-visible registrar whose
 * constructor chains it. Use at namespace gaze scope:
 *
 *   GAZE_REGISTER_PREFETCHER(gaze)
 *   {
 *       PrefetcherDescriptor d;
 *       d.name = "gaze";
 *       ...
 *       return d;
 *   }
 *
 * The registrar deliberately has external linkage: gaze_core is a
 * static library, and registry.cc anchors each registrar by name so
 * the linker cannot drop a scheme's object file (nothing else
 * references scheme translation units once construction goes through
 * the registry).
 */
#define GAZE_REGISTER_PREFETCHER(ident) \
    static ::gaze::PrefetcherDescriptor \
        gazePrefetcherDescriptor_##ident(); \
    ::gaze::PrefetcherRegistrar gazePrefetcherRegistrar_##ident( \
        &gazePrefetcherDescriptor_##ident); \
    static ::gaze::PrefetcherDescriptor gazePrefetcherDescriptor_##ident()
