#include "prefetchers/ipcp.hh"

#include "prefetchers/registry.hh"

#include "common/bitset.hh"

namespace gaze
{

IpcpPrefetcher::IpcpPrefetcher(const IpcpParams &params)
    : cfg(params), ipTable(params.ipSets, params.ipWays),
      cspt(params.csptEntries), rst(1, params.rstEntries),
      rr(params.rrEntries, 0)
{
}

bool
IpcpPrefetcher::rrContains(Addr block) const
{
    for (Addr a : rr)
        if (a == block && a != 0)
            return true;
    return false;
}

void
IpcpPrefetcher::rrInsert(Addr block)
{
    rr[rrNext] = block;
    rrNext = (rrNext + 1) % rr.size();
}

void
IpcpPrefetcher::issueLine(Addr vaddr, uint32_t fill_level)
{
    Addr block = blockNumber(vaddr);
    if (rrContains(block))
        return;
    rrInsert(block);
    issuePrefetch(vaddr, fill_level, /*virt=*/true);
}

void
IpcpPrefetcher::onAccess(const DemandAccess &access)
{
    if (access.type != AccessType::Load)
        return;

    Addr block = blockNumber(access.vaddr);
    Addr page = pageNumber(access.vaddr);
    uint32_t off = regionOffset(access.vaddr);

    // --- Region stream tracking (GS class substrate) -----------------
    uint64_t rtag = page;
    RstEntry *r = rst.find(0, rtag);
    if (!r) {
        RstEntry fresh;
        fresh.seen = Bitset(blocksPerPage);
        rst.insert(0, rtag, std::move(fresh));
        r = rst.find(0, rtag);
    }
    if (!r->seen.test(off)) {
        r->seen.set(off);
        if (++r->touched >= cfg.gsDenseThreshold)
            r->streaming = true;
    }

    // --- Per-IP classification ---------------------------------------
    uint64_t h = mix64(access.pc);
    uint64_t set = h & (ipTable.sets() - 1);
    uint64_t tag = h >> 8;
    IpEntry *e = ipTable.find(set, tag);
    if (!e) {
        IpEntry fresh;
        fresh.lastBlock = block;
        ipTable.insert(set, tag, fresh);
        return;
    }

    int64_t delta = int64_t(block) - int64_t(e->lastBlock);
    e->lastBlock = block;
    if (delta == 0)
        return;

    // Constant-stride confidence.
    if (delta == e->stride) {
        e->conf.increment();
    } else {
        if (e->conf.value() > 0)
            e->conf.decrement();
        else
            e->stride = delta;
    }

    // CSPT training on the stride signature chain.
    uint32_t sig_idx = e->signature % cfg.csptEntries;
    CsptEntry &ce = cspt[sig_idx];
    if (ce.stride == delta)
        ce.conf.increment();
    else if (ce.conf.value() > 0)
        ce.conf.decrement();
    else
        ce.stride = delta;
    e->signature = static_cast<uint16_t>(((e->signature << 3)
                                          ^ uint64_t(delta & 0x3f))
                                         & 0x3ff);

    // Classification priority: GS > CS > CPLX (as in IPCP).
    if (r->streaming)
        e->cls = IpClass::GlobalStream;
    else if (e->conf.value() >= 2)
        e->cls = IpClass::ConstantStride;
    else if (cspt[e->signature % cfg.csptEntries].conf.value() >= 2)
        e->cls = IpClass::Complex;
    else
        e->cls = IpClass::None;

    // --- Prefetch generation -----------------------------------------
    switch (e->cls) {
      case IpClass::GlobalStream: {
        int dir = delta >= 0 ? 1 : -1;
        for (uint32_t i = 1; i <= cfg.gsDegree; ++i) {
            int64_t t = int64_t(block) + dir * int64_t(i);
            if (t < 0)
                break;
            Addr va = Addr(t) << blockShift;
            if (pageNumber(va) != page)
                break;
            issueLine(va, i <= cfg.gsDegree / 2 ? levelL1 : levelL2);
        }
        break;
      }
      case IpClass::ConstantStride: {
        for (uint32_t i = 1; i <= cfg.csDegree; ++i) {
            int64_t t = int64_t(block) + e->stride * int64_t(i);
            if (t < 0)
                break;
            Addr va = Addr(t) << blockShift;
            if (pageNumber(va) != page)
                break;
            issueLine(va, levelL1);
        }
        break;
      }
      case IpClass::Complex: {
        uint16_t sig = e->signature;
        int64_t cursor = int64_t(block);
        for (uint32_t d = 0; d < cfg.cplxDepth; ++d) {
            const CsptEntry &c = cspt[sig % cfg.csptEntries];
            if (c.conf.value() < 2 || c.stride == 0)
                break;
            cursor += c.stride;
            if (cursor < 0)
                break;
            Addr va = Addr(cursor) << blockShift;
            if (pageNumber(va) != page)
                break;
            issueLine(va, d == 0 ? levelL1 : levelL2);
            sig = static_cast<uint16_t>(((sig << 3)
                                         ^ uint64_t(c.stride & 0x3f))
                                        & 0x3ff);
        }
        break;
      }
      case IpClass::None:
        break;
    }
}

uint64_t
IpcpPrefetcher::storageBits() const
{
    // IP table entry: tag(8)+last(12)+stride(7)+conf(2)+sig(10)+cls(2).
    uint64_t ip_bits = uint64_t(cfg.ipSets) * cfg.ipWays * 41;
    uint64_t cspt_bits = uint64_t(cfg.csptEntries) * (7 + 2);
    uint64_t rst_bits = uint64_t(cfg.rstEntries) * (20 + 64 + 6 + 1);
    uint64_t rr_bits = uint64_t(cfg.rrEntries) * 16;
    return ip_bits + cspt_bits + rst_bits + rr_bits;
}

GAZE_REGISTER_PREFETCHER(ipcp)
{
    PrefetcherDescriptor d;
    d.name = "ipcp";
    d.doc = "IPCP (ISCA'20): per-IP classification into constant "
            "stride / complex stride / streaming prefetch classes";
    d.build = [](const SpecOptions &) -> std::unique_ptr<Prefetcher> {
        return std::make_unique<IpcpPrefetcher>();
    };
    return d;
}

} // namespace gaze
