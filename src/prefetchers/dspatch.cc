#include "prefetchers/dspatch.hh"

#include "sim/dram.hh"

#include "prefetchers/registry.hh"

namespace gaze
{

DspatchPrefetcher::DspatchPrefetcher(const DspatchParams &params)
    : SpatialPatternPrefetcher(params.base), cfg(params),
      spt(params.sptSets, params.sptWays)
{
}

Bitset
DspatchPrefetcher::rotateLeft(const Bitset &fp, uint32_t by) const
{
    uint32_t n = regionBlocks();
    Bitset out(n);
    for (size_t b = fp.findFirst(); b < fp.size(); b = fp.findNext(b + 1))
        out.set((b + n - (by % n)) % n);
    return out;
}

double
DspatchPrefetcher::busUtilization() const
{
    return context.dram ? context.dram->recentUtilization() : 0.0;
}

void
DspatchPrefetcher::predictOnTrigger(const RegionInfo &info)
{
    uint64_t key = mix64(info.triggerPc);
    Entry *e = spt.find(key & (spt.sets() - 1), key);
    if (!e || e->merges < 2)
        return; // one observation is not a pattern yet

    bool prefer_acc = busUtilization() >= cfg.bwThreshold;
    (prefer_acc ? accUsed : covUsed)++;

    uint32_t n = regionBlocks();
    PfPattern pat(n, PfLevel::None);
    if (prefer_acc) {
        // Accuracy-biased: only blocks every generation touched.
        for (size_t b = e->accP.findFirst(); b < e->accP.size();
             b = e->accP.findNext(b + 1))
            pat[(b + info.trigger) % n] = PfLevel::L1;
    } else {
        // Coverage-biased: AND-confirmed blocks to L1, OR-only to L2.
        for (size_t b = e->covP.findFirst(); b < e->covP.size();
             b = e->covP.findNext(b + 1)) {
            uint32_t blk = (uint32_t(b) + info.trigger) % n;
            pat[blk] = e->accP.test(b) ? PfLevel::L1 : PfLevel::L2;
        }
    }
    installPattern(info, std::move(pat));
}

void
DspatchPrefetcher::learnOnEnd(const RegionInfo &info)
{
    uint64_t key = mix64(info.triggerPc);
    uint64_t set = key & (spt.sets() - 1);
    Bitset anchored = rotateLeft(info.footprint, info.trigger);

    Entry *e = spt.find(set, key);
    if (!e) {
        Entry fresh;
        fresh.covP = anchored;
        fresh.accP = anchored;
        fresh.merges = 1;
        spt.insert(set, key, std::move(fresh));
        return;
    }
    if (++e->merges >= cfg.covResetPeriod) {
        // Periodic re-anchor: CovP saturates towards all-ones under
        // OR-merging; resetting it to the latest footprint keeps the
        // coverage pattern current (DSPatch's pattern aging).
        e->covP = anchored;
        e->accP = anchored;
        e->merges = 1;
        return;
    }
    e->covP |= anchored;
    e->accP &= anchored;
}

uint64_t
DspatchPrefetcher::storageBits() const
{
    // SPT entry: tag (12b) + LRU (2b) + two patterns + merge ctr (5b).
    uint64_t spt_bits = uint64_t(cfg.sptSets) * cfg.sptWays
                        * (12 + 2 + 2 * regionBlocks() + 5);
    uint64_t page_buffer = 64ULL * (36 + 3 + 12 + regionBlocks());
    uint64_t pb_bits = uint64_t(baseParams().pbEntries)
                       * (36 + 3 + 2 * regionBlocks());
    return spt_bits + page_buffer + pb_bits;
}

GAZE_REGISTER_PREFETCHER(dspatch)
{
    PrefetcherDescriptor d;
    d.name = "dspatch";
    d.doc = "DSPatch (MICRO'19): dual coverage/accuracy bit-pattern "
            "selection steered by DRAM bandwidth headroom";
    d.options = {
        OptionSchema::uintRange(
            "region", 2048, 2 * blockSize, 1u << 20,
            "spatial region size in bytes (Table IV uses 2KB)", true),
    };
    d.build = [](const SpecOptions &o) -> std::unique_ptr<Prefetcher> {
        DspatchParams cfg;
        cfg.base.regionSize = o.num("region");
        return std::make_unique<DspatchPrefetcher>(cfg);
    };
    return d;
}

} // namespace gaze
