#include "prefetchers/ip_stride.hh"

#include "prefetchers/registry.hh"

namespace gaze
{

IpStridePrefetcher::IpStridePrefetcher(const IpStrideParams &params)
    : cfg(params), table(params.sets, params.ways)
{
}

void
IpStridePrefetcher::onAccess(const DemandAccess &access)
{
    if (access.type != AccessType::Load)
        return;

    uint64_t h = mix64(access.pc);
    uint64_t set = h & (table.sets() - 1);
    uint64_t tag = h >> 8;

    Addr block = blockNumber(access.vaddr);
    Entry *e = table.find(set, tag);
    if (!e) {
        Entry fresh;
        fresh.lastBlock = block;
        fresh.stride = 0;
        fresh.conf = SatCounter(cfg.confMax, 0);
        table.insert(set, tag, fresh);
        return;
    }

    int64_t delta = int64_t(block) - int64_t(e->lastBlock);
    if (delta == 0)
        return; // same block; no stride information
    e->lastBlock = block;

    if (delta == e->stride) {
        e->conf.increment();
    } else {
        if (e->conf.value() > 0) {
            e->conf.decrement();
        } else {
            e->stride = delta;
        }
        return;
    }

    if (e->conf.value() < cfg.confThreshold)
        return;

    uint32_t degree = cfg.degree +
                      (e->conf.saturated() ? cfg.boostDegree : 0);
    Addr page = pageNumber(access.vaddr);
    for (uint32_t i = 1; i <= degree; ++i) {
        int64_t target = int64_t(block) + e->stride * int64_t(i);
        if (target < 0)
            break;
        Addr taddr = Addr(target) << blockShift;
        // Physical-style page bound: IP-stride does not cross 4KB pages.
        if (pageNumber(taddr) != page)
            break;
        issuePrefetch(taddr, levelL1, /*virt=*/true);
    }
}

uint64_t
IpStridePrefetcher::storageBits() const
{
    // tag(12) + last block(30) + stride(7) + conf(2) per entry.
    return uint64_t(cfg.sets) * cfg.ways * (12 + 30 + 7 + 2);
}

GAZE_REGISTER_PREFETCHER(ip_stride)
{
    PrefetcherDescriptor d;
    d.name = "ip_stride";
    d.doc = "per-IP stride prefetcher (the commercial baseline the "
            "paper normalizes against)";
    d.build = [](const SpecOptions &) -> std::unique_ptr<Prefetcher> {
        return std::make_unique<IpStridePrefetcher>();
    };
    return d;
}

} // namespace gaze
