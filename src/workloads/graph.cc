#include "workloads/graph.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/rng.hh"
#include "workloads/generators.hh"

namespace gaze
{
namespace
{

constexpr Addr graphArena = 0x2'0000'0000ULL;

/** Bytes per CSR offset entry / neighbor id / property value. */
constexpr uint64_t offsetBytes = 8;
constexpr uint64_t neighborBytes = 4;
constexpr uint64_t propertyBytes = 8;

} // namespace

SyntheticGraph
makeGraph(uint64_t vertices, double avg_degree, uint64_t seed)
{
    GAZE_ASSERT(vertices >= 16, "graph too small");
    SyntheticGraph g;
    g.numVertices = vertices;
    g.rowStart.resize(vertices + 1, 0);

    Rng rng(seed);
    uint64_t target_edges = static_cast<uint64_t>(vertices * avg_degree);
    g.neighbors.reserve(target_edges);

    // Power-law-ish degrees: most vertices small, a heavy head.
    for (uint64_t v = 0; v < vertices; ++v) {
        uint64_t deg;
        double u = rng.uniform();
        if (u < 0.01)
            deg = rng.range(64, 256); // hubs
        else if (u < 0.2)
            deg = rng.range(8, 32);
        else
            deg = rng.range(0, 8);
        g.rowStart[v + 1] = g.rowStart[v] + deg;
        for (uint64_t e = 0; e < deg; ++e) {
            // Endpoints skewed towards low vertex ids (hot vertices).
            uint64_t n = rng.skewed(vertices, 1.2);
            g.neighbors.push_back(static_cast<uint32_t>(n));
        }
        // CSR adjacency is sorted in practice; this is what gives
        // per-vertex property gathers their ascending spatial
        // regularity (and graph prefetching its opportunity).
        std::sort(g.neighbors.begin() + g.rowStart[v],
                  g.neighbors.end());
    }

    g.offsetsBase = graphArena;
    g.neighborsBase = g.offsetsBase
                      + ((vertices + 1) * offsetBytes + pageSize)
                            / pageSize * pageSize;
    g.propertyBase = g.neighborsBase
                     + (g.neighbors.size() * neighborBytes + pageSize)
                           / pageSize * pageSize;
    g.frontierBase = g.propertyBase
                     + (vertices * propertyBytes + pageSize)
                           / pageSize * pageSize;
    return g;
}

VectorTrace
genPageRank(const GraphTraceParams &p, bool init_phase)
{
    SyntheticGraph g = makeGraph(p.vertices, p.avgDegree, p.seed);
    TraceBuilder tb;
    Rng rng(p.seed * 3 + 1);

    if (init_phase) {
        // Data preparation: element-granular read-modify-write sweep
        // over the rank array (dense streaming). The wider gap keeps
        // it load-latency-bound rather than bus-bound.
        Addr cursor = 0;
        uint64_t span = g.numVertices * propertyBytes;
        while (tb.size() < p.records) {
            tb.load(0x900100, g.propertyBase + cursor);
            tb.store(0x900104, g.propertyBase + cursor);
            tb.nonMem(p.gapNonMem + 4, 0x900110);
            cursor += propertyBytes;
            if (cursor >= span)
                cursor = 0;
        }
        return tb.build();
    }

    // Compute phase: for each vertex, read its CSR slot (sequential),
    // then gather the ranks of its neighbors (irregular).
    uint64_t v = 0;
    while (tb.size() < p.records) {
        Addr off_addr = g.offsetsBase + v * offsetBytes;
        tb.load(0x900200, off_addr);
        uint64_t begin = g.rowStart[v];
        uint64_t end = g.rowStart[v + 1];
        for (uint64_t e = begin; e < end && tb.size() < p.records; ++e) {
            // Neighbor id load: sequential burst through the edge list.
            tb.load(0x900204, g.neighborsBase + e * neighborBytes);
            // Rank gather: irregular, hot-skewed.
            uint32_t n = g.neighbors[e];
            tb.load(0x900208, g.propertyBase + Addr(n) * propertyBytes);
            tb.nonMem(p.gapNonMem, 0x900210);
        }
        // Accumulated rank write-back.
        tb.store(0x90020c, g.propertyBase + v * propertyBytes);
        v = (v + 1) % g.numVertices;
    }
    return tb.build();
}

VectorTrace
genBfs(const GraphTraceParams &p, bool init_phase)
{
    SyntheticGraph g = makeGraph(p.vertices, p.avgDegree, p.seed + 17);
    TraceBuilder tb;
    Rng rng(p.seed * 7 + 5);

    if (init_phase) {
        Addr cursor = 0;
        uint64_t span = g.numVertices * propertyBytes;
        while (tb.size() < p.records) {
            tb.load(0x910100, g.propertyBase + cursor);
            tb.store(0x910104, g.propertyBase + cursor); // parent=-1
            tb.nonMem(p.gapNonMem + 4, 0x910108);
            cursor += propertyBytes;
            if (cursor >= span)
                cursor = 0;
        }
        return tb.build();
    }

    // Compute: walk a frontier (dense streaming over scratch), and for
    // each frontier vertex visit its neighbors and check parents.
    uint64_t frontier_cursor = 0;
    while (tb.size() < p.records) {
        // Pop a frontier entry (element-granular sequential).
        tb.load(0x910200, g.frontierBase
                              + (frontier_cursor % (1 << 20)));
        frontier_cursor += 4; // 4B vertex ids
        // The vertex it names: skewed random.
        uint64_t v = rng.skewed(g.numVertices, 1.0);
        tb.load(0x910204, g.offsetsBase + v * offsetBytes);
        uint64_t begin = g.rowStart[v];
        uint64_t end = g.rowStart[v + 1];
        for (uint64_t e = begin; e < end && tb.size() < p.records; ++e) {
            tb.load(0x910208, g.neighborsBase + e * neighborBytes);
            uint32_t n = g.neighbors[e];
            // Parent check + conditional update.
            tb.load(0x91020c, g.propertyBase + Addr(n) * propertyBytes);
            if (rng.chance(0.3))
                tb.store(0x910210,
                         g.propertyBase + Addr(n) * propertyBytes);
            tb.nonMem(p.gapNonMem, 0x910218);
        }
    }
    return tb.build();
}

VectorTrace
genTriangle(const GraphTraceParams &p)
{
    SyntheticGraph g = makeGraph(p.vertices, p.avgDegree, p.seed + 41);
    TraceBuilder tb;
    Rng rng(p.seed * 11 + 3);

    uint64_t v = 0;
    while (tb.size() < p.records) {
        tb.load(0x920200, g.offsetsBase + v * offsetBytes);
        uint64_t begin = g.rowStart[v];
        uint64_t end = g.rowStart[v + 1];
        for (uint64_t e = begin; e < end && tb.size() < p.records; ++e) {
            tb.load(0x920204, g.neighborsBase + e * neighborBytes);
            uint32_t u = g.neighbors[e];
            // Intersect: scan the start of u's neighbor list too.
            uint64_t ub = g.rowStart[u];
            uint64_t ue = std::min(g.rowStart[u + 1], ub + 8);
            tb.load(0x920208, g.offsetsBase + Addr(u) * offsetBytes);
            for (uint64_t k = ub; k < ue && tb.size() < p.records; ++k)
                tb.load(0x92020c,
                        g.neighborsBase + k * neighborBytes);
            tb.nonMem(p.gapNonMem, 0x920210);
        }
        v = (v + 1) % g.numVertices;
    }
    return tb.build();
}

} // namespace gaze
