/**
 * @file
 * The workload suite registry: named synthetic traces standing in for
 * the paper's SPEC06 / SPEC17 / Ligra / PARSEC / CloudSuite / GAP /
 * QMM trace sets (see DESIGN.md for the substitution rationale). Each
 * entry knows how to (re)generate its trace deterministically.
 *
 * Trace lengths honor the GAZE_SIM_SCALE environment variable so the
 * benches can be scaled up or down without recompiling.
 */

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/trace.hh"

namespace gaze
{

/**
 * A named workload belonging to a suite. A workload resolves to a
 * TraceSource one of two ways: regenerated in memory by @p make
 * (the default), or replayed from a recorded .gzt file when
 * @p traceFile is set (gaze_sim --trace-dir, see tracing/trace_io.hh).
 */
struct WorkloadDef
{
    WorkloadDef() = default;

    WorkloadDef(std::string name_, std::string suite_,
                std::function<VectorTrace()> make_)
        : name(std::move(name_)), suite(std::move(suite_)),
          make(std::move(make_))
    {
    }

    std::string name;  ///< e.g. "fotonik3d_s"
    std::string suite; ///< "spec06" | "spec17" | "ligra" | "parsec"
                       ///< | "cloud" | "gap" | "qmm_server" | "qmm_client"
    std::function<VectorTrace()> make;

    /** When non-empty, open() replays this .gzt instead of make(). */
    std::string traceFile;

    /** The trace this workload runs from (generator or file). */
    std::unique_ptr<TraceSource> open() const;
};

/** Global simulation scale from GAZE_SIM_SCALE (default 1.0). */
double simScale();

/** Baseline record count for one trace, after scaling. */
uint64_t scaledRecords(uint64_t base = 600'000);

/** Every registered workload. */
const std::vector<WorkloadDef> &allWorkloads();

/** Workloads of one suite ("qmm" matches both server and client). */
std::vector<WorkloadDef> suiteWorkloads(const std::string &suite);

/** Find a workload by exact name (fatal if missing). */
const WorkloadDef &findWorkload(const std::string &name);

/**
 * Rebind each workload to "<dir>/<name>.gzt". Every file must exist
 * with a readable header (fatal otherwise, naming the offender) so a
 * bad --trace-dir fails before any simulation time is spent.
 */
std::vector<WorkloadDef> withTraceDir(std::vector<WorkloadDef> workloads,
                                      const std::string &dir);

/**
 * Canonical identity string for result-cache keys. A generator
 * workload is its registry name plus the generation scale (the only
 * inputs its deterministic trace depends on); a file-backed workload
 * is the name plus the recorded trace's header key (version, record
 * count, payload checksum — see traceCacheKey), so two different
 * recordings of the same workload never share cached results. Fatal
 * on an unreadable trace file.
 */
std::string workloadIdentity(const WorkloadDef &w);

/** The five main-evaluation suites of Fig. 6-8. */
const std::vector<std::string> &mainSuites();

} // namespace gaze
