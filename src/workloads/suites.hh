/**
 * @file
 * The workload suite registry: named synthetic traces standing in for
 * the paper's SPEC06 / SPEC17 / Ligra / PARSEC / CloudSuite / GAP /
 * QMM trace sets (see DESIGN.md for the substitution rationale). Each
 * entry knows how to (re)generate its trace deterministically.
 *
 * Trace lengths honor the GAZE_SIM_SCALE environment variable so the
 * benches can be scaled up or down without recompiling.
 */

#ifndef GAZE_WORKLOADS_SUITES_HH
#define GAZE_WORKLOADS_SUITES_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/trace.hh"

namespace gaze
{

/** A named workload belonging to a suite. */
struct WorkloadDef
{
    std::string name;  ///< e.g. "fotonik3d_s"
    std::string suite; ///< "spec06" | "spec17" | "ligra" | "parsec"
                       ///< | "cloud" | "gap" | "qmm_server" | "qmm_client"
    std::function<VectorTrace()> make;
};

/** Global simulation scale from GAZE_SIM_SCALE (default 1.0). */
double simScale();

/** Baseline record count for one trace, after scaling. */
uint64_t scaledRecords(uint64_t base = 600'000);

/** Every registered workload. */
const std::vector<WorkloadDef> &allWorkloads();

/** Workloads of one suite ("qmm" matches both server and client). */
std::vector<WorkloadDef> suiteWorkloads(const std::string &suite);

/** Find a workload by exact name (fatal if missing). */
const WorkloadDef &findWorkload(const std::string &name);

/** The five main-evaluation suites of Fig. 6-8. */
const std::vector<std::string> &mainSuites();

} // namespace gaze

#endif // GAZE_WORKLOADS_SUITES_HH
