/**
 * @file
 * Synthetic trace generators. Each generator reproduces one memory-
 * access *archetype* from the paper's workload suites (see DESIGN.md's
 * substitution table):
 *
 *  - streaming: long sequential walks over large arrays (bwaves, lbm,
 *    leslie3d; Ligra frontiers) — regions start at blocks 0,1 and run
 *    fully dense, the §III-C spatial-streaming case;
 *  - strided: fixed multi-block strides (milc, facesim) — sparse but
 *    perfectly regular footprints;
 *  - region templates: recurring spatial footprints with consistent
 *    internal temporal order, with a controllable number of templates
 *    sharing the same trigger offset (the Fig. 2 conflict) and
 *    controllable PC sharing — this is the knob that separates
 *    offset-, PC-, and address-based characterization from Gaze's;
 *  - pointer chase: serialized dependent loads over a random chain
 *    (mcf, canneal, omnetpp);
 *  - server: front-end-stall-dominated with light data misses (the
 *    QMM server class where data prefetching cannot help);
 *  - mixes of the above via phase concatenation.
 *
 * All generators are deterministic in their seed.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "sim/trace.hh"

namespace gaze
{

/** Convenience builder collecting TraceRecords. */
class TraceBuilder
{
  public:
    void
    nonMem(uint32_t count, PC pc = 0x1000)
    {
        for (uint32_t i = 0; i < count; ++i)
            recs.push_back({pc + 4 * i, 0, TraceOp::NonMem, 0});
    }

    void load(PC pc, Addr vaddr)
    {
        recs.push_back({pc, vaddr, TraceOp::Load, 0});
    }

    void dependentLoad(PC pc, Addr vaddr)
    {
        recs.push_back({pc, vaddr, TraceOp::DependentLoad, 0});
    }

    void store(PC pc, Addr vaddr)
    {
        recs.push_back({pc, vaddr, TraceOp::Store, 0});
    }

    void stall(uint16_t cycles)
    {
        recs.push_back({0, 0, TraceOp::Stall, cycles});
    }

    size_t size() const { return recs.size(); }

    VectorTrace build() { return VectorTrace(std::move(recs)); }

    /** Append all records of @p other (phase concatenation). */
    void
    append(TraceBuilder &&other)
    {
        recs.insert(recs.end(), other.recs.begin(), other.recs.end());
    }

  private:
    std::vector<TraceRecord> recs;
};

/** Parameters for streaming traces. */
struct StreamParams
{
    uint64_t seed = 1;
    uint64_t records = 1'000'000;

    /** Concurrent sequential streams (distinct arrays). */
    uint32_t streams = 2;

    /** Array length in 4KB pages per stream (4MB > LLC per stream). */
    uint64_t pagesPerStream = 1024;

    /** Non-memory instructions between memory ops. */
    uint32_t gapNonMem = 3;

    /** Fraction of memory ops that are stores (lbm-like write-heavy). */
    double storeFraction = 0.0;

    /** Stride in blocks (1 = fully dense streaming). */
    uint32_t strideBlocks = 1;

    /**
     * Element size in bytes: real code walks arrays element by
     * element, so each 64B block is touched blockSize/elemBytes times
     * (one miss, then hits). This is what makes streaming latency-
     * bound rather than MSHR-saturated.
     */
    uint32_t elemBytes = 8;
};

/** Sequential/strided streaming over large arrays. */
VectorTrace genStream(const StreamParams &p);

/** Parameters for the recurring-footprint template generator. */
struct TemplateParams
{
    uint64_t seed = 1;
    uint64_t records = 1'000'000;

    /** Number of distinct footprint templates. */
    uint32_t numTemplates = 8;

    /**
     * Templates per trigger offset: 1 means the trigger offset alone
     * identifies the template (offset-based schemes work); k > 1
     * recreates the Fig. 2 conflict where only the second access
     * disambiguates.
     */
    uint32_t conflictDegree = 1;

    /** Blocks per template footprint. */
    uint32_t blocksPerTemplate = 12;

    /**
     * When true every template is touched by the same PC set (PC-based
     * characterization conflicts); when false each template has its
     * own PC (PC-based schemes work).
     */
    bool sharedPc = true;

    /**
     * Distinct trigger-PC variants per template (call sites). Each
     * variant maps to exactly one template, so PC-based schemes stay
     * *accurate* — but numTemplates * pcVariants PCs must fit in
     * their tables. Cloud-like code footprints set this high to
     * overflow small PC-indexed tables (DSPatch's 256-entry SPT)
     * while 16k-entry PHTs (SMS/Bingo) still cope.
     */
    uint32_t pcVariants = 1;

    /** Distinct pages cycled through (working-set pressure). */
    uint64_t numPages = 8192;

    /**
     * Fraction of region activations on previously-visited pages that
     * keep their page->template binding (makes PC+Address exact
     * matches possible); the rest are fresh pages.
     */
    double revisitFraction = 0.6;

    /**
     * Probability that two adjacent accesses within a footprint swap
     * order (out-of-order scheduling noise).
     */
    double jitter = 0.0;

    uint32_t gapNonMem = 4;

    /** Consecutive element accesses per touched block (reuse). */
    uint32_t accessesPerBlock = 3;

    /**
     * Region generations open at once. Real programs interleave work
     * on many pages, so consecutive accesses to one region are spread
     * out in time — without this no prefetch could ever be timely.
     */
    uint32_t concurrentRegions = 12;
};

/** Recurring region footprints with internal temporal order. */
VectorTrace genTemplates(const TemplateParams &p);

/** Parameters for pointer chasing. */
struct ChaseParams
{
    uint64_t seed = 1;
    uint64_t records = 1'000'000;

    /** Nodes in the chain (footprint = nodes * 64B). */
    uint64_t nodes = 1 << 18;

    uint32_t gapNonMem = 4;

    /** Fraction of loads that are independent noise (array lookups). */
    double noiseFraction = 0.2;
};

/** Serialized random pointer chasing (mcf/canneal-like). */
VectorTrace genPointerChase(const ChaseParams &p);

/** Parameters for server-class (front-end-bound) traces. */
struct ServerParams
{
    uint64_t seed = 1;
    uint64_t records = 1'000'000;

    /** Mean instructions between front-end stalls. */
    uint32_t stallPeriod = 120;
    uint16_t stallCycles = 18;

    /** Data accesses: sparse template regions with conflicts. */
    uint32_t gapNonMem = 9;
    uint64_t numPages = 4096;
};

/** QMM-server-like: instruction-bound, light data misses. */
VectorTrace genServer(const ServerParams &p);

/**
 * Interleave of dense streaming and sparse region starts from the same
 * code (the §III-C BFS hazard): sparse regions also begin at blocks
 * 0,1 but stay sparse, so naive dense-pattern replay over-prefetches.
 */
struct StreamHazardParams
{
    uint64_t seed = 1;
    uint64_t records = 1'000'000;

    /** Fraction of region activations that are truly dense streams. */
    double denseFraction = 0.5;

    /**
     * Fraction of *sparse* regions that begin at blocks 0,1 like a
     * stream (the actual §III-C hazard); the rest start at a random
     * offset and never look like streaming.
     */
    double sparseLookalike = 0.35;

    /** Blocks touched in a sparse (frontier-like) region. */
    uint32_t sparseBlocks = 4;

    uint64_t numPages = 8192;
    uint32_t gapNonMem = 5;

    /** Consecutive element accesses per touched block. */
    uint32_t accessesPerBlock = 3;

    /** Concurrently open regions (see TemplateParams). */
    uint32_t concurrentRegions = 6;
};

VectorTrace genStreamHazard(const StreamHazardParams &p);

} // namespace gaze
