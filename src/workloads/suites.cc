#include "workloads/suites.hh"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/log.hh"
#include "tracing/trace_io.hh"
#include "workloads/generators.hh"
#include "workloads/graph.hh"

namespace gaze
{

std::unique_ptr<TraceSource>
WorkloadDef::open() const
{
    if (!traceFile.empty())
        return std::make_unique<FileTrace>(traceFile);
    GAZE_ASSERT(make, "workload '", name, "' has no generator");
    return std::make_unique<VectorTrace>(make());
}

double
simScale()
{
    static double scale = [] {
        const char *env = std::getenv("GAZE_SIM_SCALE");
        if (!env)
            return 1.0;
        double v = std::atof(env);
        return v > 0.0 ? v : 1.0;
    }();
    return scale;
}

uint64_t
scaledRecords(uint64_t base)
{
    double v = double(base) * simScale();
    return v < 10'000 ? 10'000 : static_cast<uint64_t>(v);
}

namespace
{

/** Shorthands for building the registry below. */
VectorTrace
stream(uint64_t seed, uint32_t streams, uint32_t stride,
       double store_frac = 0.0, uint32_t gap = 3)
{
    StreamParams p;
    p.seed = seed;
    p.records = scaledRecords();
    p.streams = streams;
    p.strideBlocks = stride;
    p.storeFraction = store_frac;
    p.gapNonMem = gap;
    return genStream(p);
}

VectorTrace
templates(uint64_t seed, uint32_t num, uint32_t conflict,
          uint32_t blocks, bool shared_pc, double revisit,
          double jitter = 0.0, uint64_t pages = 8192,
          uint32_t pc_variants = 1, uint32_t gap = 4)
{
    TemplateParams p;
    p.seed = seed;
    p.records = scaledRecords();
    p.numTemplates = num;
    p.conflictDegree = conflict;
    p.blocksPerTemplate = blocks;
    p.sharedPc = shared_pc;
    p.revisitFraction = revisit;
    p.jitter = jitter;
    p.numPages = pages;
    p.pcVariants = pc_variants;
    p.gapNonMem = gap;
    return genTemplates(p);
}

VectorTrace
chase(uint64_t seed, uint64_t nodes, double noise = 0.2)
{
    ChaseParams p;
    p.seed = seed;
    p.records = scaledRecords();
    p.nodes = nodes;
    p.noiseFraction = noise;
    return genPointerChase(p);
}

VectorTrace
hazard(uint64_t seed, double dense_frac, uint32_t sparse_blocks)
{
    StreamHazardParams p;
    p.seed = seed;
    p.records = scaledRecords();
    p.denseFraction = dense_frac;
    p.sparseBlocks = sparse_blocks;
    return genStreamHazard(p);
}

VectorTrace
server(uint64_t seed)
{
    ServerParams p;
    p.seed = seed;
    p.records = scaledRecords();
    return genServer(p);
}

GraphTraceParams
graphParams(uint64_t seed)
{
    GraphTraceParams p;
    p.seed = seed;
    p.records = scaledRecords();
    p.vertices = 1 << 17;
    // Denser adjacency: neighbor-list streaming carries more of the
    // traffic, as in the paper's well-optimized Ligra workloads.
    p.avgDegree = 12.0;
    p.gapNonMem = 3;
    return p;
}

std::vector<WorkloadDef>
buildRegistry()
{
    std::vector<WorkloadDef> w;

    // ---- SPEC06 stand-ins ------------------------------------------
    // leslie3d/bwaves: dense multi-array streaming.
    w.push_back({"leslie3d", "spec06", [] { return stream(101, 3, 1); }});
    w.push_back({"bwaves", "spec06", [] { return stream(102, 2, 1); }});
    // milc: regular multi-block strides.
    w.push_back({"milc", "spec06", [] { return stream(103, 2, 4); }});
    // mcf: pointer chasing dominated.
    w.push_back({"mcf", "spec06", [] { return chase(104, 1 << 18); }});
    // gcc: recurring footprints, low conflict (simple patterns).
    w.push_back({"gcc", "spec06",
                 [] { return templates(105, 6, 1, 10, false, 0.7); }});
    // soplex: strided + streaming mix (two stride classes).
    w.push_back({"soplex", "spec06", [] { return stream(106, 3, 2); }});
    // sphinx3: moderate-density templates, mild conflicts.
    w.push_back({"sphinx3", "spec06",
                 [] { return templates(107, 8, 2, 8, true, 0.6); }});
    // lbm: write-heavy streaming (bandwidth-bound).
    w.push_back({"lbm", "spec06",
                 [] { return stream(108, 4, 1, 0.45, 2); }});

    // ---- SPEC17 stand-ins ------------------------------------------
    w.push_back({"bwaves_s", "spec17", [] { return stream(201, 2, 1); }});
    w.push_back({"lbm_s", "spec17",
                 [] { return stream(202, 4, 1, 0.45, 2); }});
    w.push_back({"roms_s", "spec17", [] { return stream(203, 3, 2); }});
    // fotonik3d: the Fig. 2 example — recurring footprints with
    // consistent internal order and trigger conflicts.
    w.push_back({"fotonik3d_s", "spec17",
                 [] { return templates(204, 9, 3, 12, true, 0.7); }});
    w.push_back({"mcf_s", "spec17", [] { return chase(205, 1 << 19); }});
    // xalancbmk: high-conflict complex patterns with jitter.
    w.push_back({"xalancbmk_s", "spec17",
                 [] { return templates(206, 16, 4, 6, true, 0.5,
                                       0.2); }});
    // omnetpp: pointer-heavy with some locality.
    w.push_back({"omnetpp_s", "spec17",
                 [] { return chase(207, 1 << 16, 0.4); }});
    // gcc_s: low-conflict templates.
    w.push_back({"gcc_s", "spec17",
                 [] { return templates(208, 6, 1, 10, false, 0.7); }});
    // cam4/pop2: stride + template mix (streams with sparse touches).
    w.push_back({"pop2_s", "spec17", [] { return stream(209, 4, 3); }});

    // ---- Ligra stand-ins -------------------------------------------
    w.push_back({"PageRank-1", "ligra",
                 [] { return genPageRank(graphParams(301), true); }});
    w.push_back({"PageRank-61", "ligra",
                 [] { return genPageRank(graphParams(302), false); }});
    w.push_back({"BFS-1", "ligra",
                 [] { return genBfs(graphParams(303), true); }});
    w.push_back({"BFS-17", "ligra",
                 [] { return genBfs(graphParams(304), false); }});
    w.push_back({"BellmanFord-4", "ligra",
                 [] { return genPageRank(graphParams(305), true); }});
    w.push_back({"BellmanFord-34", "ligra",
                 [] { return genBfs(graphParams(306), false); }});
    w.push_back({"Components-24", "ligra",
                 [] { return genPageRank(graphParams(307), false); }});
    w.push_back({"Triangle-4", "ligra",
                 [] { return genTriangle(graphParams(308)); }});
    // The §III-C hazard in isolation: frontier streaming interleaved
    // with sparse region starts from the same code.
    w.push_back({"BC-4", "ligra", [] { return hazard(309, 0.55, 4); }});
    w.push_back({"MIS-17", "ligra", [] { return hazard(310, 0.35, 6); }});

    // ---- PARSEC stand-ins ------------------------------------------
    w.push_back({"facesim", "parsec", [] { return stream(401, 2, 4); }});
    w.push_back({"streamcluster", "parsec",
                 [] { return stream(402, 1, 1, 0.0, 8); }});
    w.push_back({"canneal", "parsec",
                 [] { return chase(403, 1 << 18, 0.3); }});
    w.push_back({"fluidanimate", "parsec",
                 [] { return templates(404, 6, 2, 14, false, 0.8); }});

    // ---- CloudSuite stand-ins --------------------------------------
    // Scale-out server workloads: large irregular footprints where
    // footprints correlate with (trigger, second) and with PC+Address,
    // but not with coarse events. Front-end pressure included.
    // Cloud footprints are code-correlated (each call site produces
    // one template) but the code footprint is huge: 24-32 templates x
    // ~40 call sites overflow small PC-indexed tables while the 16k
    // PHTs of SMS/Bingo cope. Offset-only (PMP) conflicts regardless.
    // Cloud data misses are modest (the primary pressure is the code
    // footprint), so the memory-op gap is wider than SPEC's.
    w.push_back({"cassandra-p0c0", "cloud",
                 [] { return templates(501, 24, 4, 7, false, 0.55, 0.15,
                                       16384, 40, 8); }});
    w.push_back({"cassandra-p1c1", "cloud",
                 [] { return templates(502, 24, 4, 7, false, 0.55, 0.15,
                                       16384, 40, 8); }});
    w.push_back({"nutch-p0c0", "cloud",
                 [] { return templates(503, 32, 4, 5, false, 0.5, 0.2,
                                       16384, 48, 8); }});
    w.push_back({"cloud9-p5c2", "cloud",
                 [] { return templates(504, 20, 5, 6, false, 0.45, 0.2,
                                       16384, 40, 8); }});
    // Media streaming: the one cloud workload with real streams
    // (modest intensity — it shares the suite with five irregular
    // traces, as CloudSuite's mix does).
    w.push_back({"stream-p1c0", "cloud",
                 [] { return stream(505, 1, 1, 0.1, 9); }});
    w.push_back({"classification-p2c0", "cloud",
                 [] { return templates(506, 16, 3, 8, false, 0.6, 0.1,
                                       16384, 32, 8); }});

    // ---- GAP stand-ins ---------------------------------------------
    w.push_back({"pr.twi", "gap",
                 [] { return genPageRank(graphParams(601), false); }});
    w.push_back({"pr.web", "gap",
                 [] { return genPageRank(graphParams(602), false); }});
    w.push_back({"cc.twi", "gap",
                 [] { return genBfs(graphParams(603), false); }});
    w.push_back({"cc.web", "gap",
                 [] { return genBfs(graphParams(604), false); }});
    w.push_back({"tc.twi", "gap",
                 [] { return genTriangle(graphParams(605)); }});
    w.push_back({"tc.web", "gap",
                 [] { return genTriangle(graphParams(606)); }});

    // ---- QMM stand-ins ---------------------------------------------
    w.push_back({"srv.09", "qmm_server", [] { return server(701); }});
    w.push_back({"srv.27", "qmm_server", [] { return server(702); }});
    w.push_back({"srv.46", "qmm_server", [] { return server(703); }});
    w.push_back({"clt.fp.06", "qmm_client",
                 [] { return stream(704, 3, 1); }});
    w.push_back({"clt.int.01", "qmm_client",
                 [] { return stream(705, 2, 3); }});
    w.push_back({"clt.int.19", "qmm_client",
                 [] { return templates(706, 8, 2, 10, false, 0.7); }});

    return w;
}

} // namespace

const std::vector<WorkloadDef> &
allWorkloads()
{
    static const std::vector<WorkloadDef> registry = buildRegistry();
    return registry;
}

std::vector<WorkloadDef>
suiteWorkloads(const std::string &suite)
{
    std::vector<WorkloadDef> out;
    for (const auto &w : allWorkloads()) {
        if (w.suite == suite
            || (suite == "qmm" && (w.suite == "qmm_server"
                                   || w.suite == "qmm_client")))
            out.push_back(w);
    }
    GAZE_ASSERT(!out.empty(), "unknown suite '", suite, "'");
    return out;
}

const WorkloadDef &
findWorkload(const std::string &name)
{
    for (const auto &w : allWorkloads())
        if (w.name == name)
            return w;
    GAZE_FATAL("unknown workload '", name, "'");
}

std::vector<WorkloadDef>
withTraceDir(std::vector<WorkloadDef> workloads, const std::string &dir)
{
    GAZE_ASSERT(!dir.empty(), "empty trace directory");
    std::string base = dir;
    if (base.back() != '/')
        base += '/';
    for (auto &w : workloads) {
        w.traceFile = base + traceFileName(w.name);
        std::string error;
        if (!probeTraceFile(w.traceFile, nullptr, &error))
            GAZE_FATAL("workload '", w.name, "' has no usable trace in '",
                       dir, "': ", error,
                       " (record one with: gaze_trace record --workloads=",
                       w.name, " --out-dir=", dir, ")");
    }
    return workloads;
}

std::string
workloadIdentity(const WorkloadDef &w)
{
    if (!w.traceFile.empty()) {
        // Campaign expansion derives keys for every (cell, baseline,
        // core copy), so one path is asked for thousands of times;
        // memoize the header read. A file that changes under a live
        // process is already undefined (FileTrace would fatal), so a
        // process-lifetime memo is safe.
        static std::mutex mtx;
        static std::map<std::string, std::string> keys;
        std::unique_lock<std::mutex> lock(mtx);
        auto it = keys.find(w.traceFile);
        if (it == keys.end())
            it = keys.emplace(w.traceFile,
                              traceCacheKey(w.traceFile))
                     .first;
        return w.name + "=" + it->second;
    }
    char scale[40];
    std::snprintf(scale, sizeof(scale), "%.17g", simScale());
    return w.name + "=gen:scale=" + scale;
}

const std::vector<std::string> &
mainSuites()
{
    static const std::vector<std::string> suites = {
        "spec06", "spec17", "ligra", "parsec", "cloud"};
    return suites;
}

} // namespace gaze
