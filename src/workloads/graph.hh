/**
 * @file
 * Synthetic graph workloads standing in for the Ligra and GAP traces.
 *
 * A deterministic power-law graph is materialized in CSR form at
 * virtual addresses, and the trace generators walk it the way the real
 * frameworks do:
 *
 *  - the offsets / frontier arrays are read sequentially (dense
 *    streaming regions, the §III-C motivating pattern);
 *  - neighbor lists are short sequential bursts at irregular starts;
 *  - per-vertex property reads (ranks, parents) are data-dependent
 *    irregular accesses to hot (power-law) vertices.
 *
 * Two phases per algorithm mirror the paper's Fig. 10 split: an
 * `init` phase (data preparation, almost pure streaming) and a
 * `compute` phase (interleaved streaming + irregular).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/trace.hh"

namespace gaze
{

/** CSR graph materialized at fixed virtual addresses. */
struct SyntheticGraph
{
    uint64_t numVertices = 0;
    std::vector<uint64_t> rowStart; ///< CSR offsets (numVertices + 1)
    std::vector<uint32_t> neighbors;

    Addr offsetsBase = 0;   ///< vaddr of the CSR offsets array
    Addr neighborsBase = 0; ///< vaddr of the neighbor array
    Addr propertyBase = 0;  ///< vaddr of the per-vertex property array
    Addr frontierBase = 0;  ///< vaddr of frontier scratch space
};

/** Build a deterministic power-law graph. */
SyntheticGraph makeGraph(uint64_t vertices, double avg_degree,
                         uint64_t seed);

struct GraphTraceParams
{
    uint64_t seed = 1;
    uint64_t records = 1'000'000;
    uint64_t vertices = 1 << 18;
    double avgDegree = 8.0;
    uint32_t gapNonMem = 2;
};

/** PageRank-like: sequential vertex sweep + irregular rank gathers. */
VectorTrace genPageRank(const GraphTraceParams &p, bool init_phase);

/** BFS-like: frontier streaming + neighbor bursts + parent checks. */
VectorTrace genBfs(const GraphTraceParams &p, bool init_phase);

/** Triangle-counting-like: two-level neighbor intersection reads. */
VectorTrace genTriangle(const GraphTraceParams &p);

} // namespace gaze
