#include "workloads/generators.hh"

#include <algorithm>

#include "common/log.hh"

namespace gaze
{
namespace
{

/** Distinct virtual-address arenas so generators never collide. */
constexpr Addr streamArena = 0x1000'0000ULL;
constexpr Addr templateArena = 0x4000'0000ULL;
constexpr Addr chaseArena = 0x8000'0000ULL;
constexpr Addr hazardArena = 0xc000'0000ULL;

} // namespace

VectorTrace
genStream(const StreamParams &p)
{
    TraceBuilder tb;
    Rng rng(p.seed);

    std::vector<Addr> cursor(p.streams);
    std::vector<Addr> base(p.streams);
    for (uint32_t s = 0; s < p.streams; ++s) {
        base[s] = streamArena + Addr(s) * p.pagesPerStream * pageSize
                  + Addr(p.seed % 64) * pageSize;
        cursor[s] = 0;
    }

    uint64_t span = p.pagesPerStream * pageSize;
    uint32_t s = 0;
    while (tb.size() < p.records) {
        Addr va = base[s] + cursor[s];
        PC pc = 0x400100 + 0x40 * s;
        bool is_store = p.storeFraction > 0.0
                        && rng.chance(p.storeFraction);
        if (is_store)
            tb.store(pc + 4, va);
        else
            tb.load(pc, va);

        // Element-granular walk: advance within the block, and jump
        // by the stride when the block is exhausted.
        cursor[s] += p.elemBytes;
        if ((cursor[s] % blockSize) == 0) {
            cursor[s] += (uint64_t(p.strideBlocks) - 1) * blockSize;
        }
        if (cursor[s] >= span)
            cursor[s] = 0;
        tb.nonMem(p.gapNonMem, pc + 8);
        s = (s + 1) % p.streams;
    }
    return tb.build();
}

VectorTrace
genTemplates(const TemplateParams &p)
{
    GAZE_ASSERT(p.numTemplates >= 1 && p.blocksPerTemplate >= 2,
                "degenerate template parameters");
    TraceBuilder tb;
    Rng rng(p.seed);

    // Build the template footprints. Templates are grouped so that
    // `conflictDegree` of them share one trigger offset and differ in
    // their second offset (and the rest of the body).
    struct Template
    {
        std::vector<uint32_t> offsets; ///< ordered access sequence
        PC pc;
    };
    std::vector<Template> temps(p.numTemplates);
    uint32_t groups = (p.numTemplates + p.conflictDegree - 1)
                      / p.conflictDegree;
    for (uint32_t t = 0; t < p.numTemplates; ++t) {
        uint32_t group = t / p.conflictDegree;
        uint32_t member = t % p.conflictDegree;
        // Trigger offset per group, spread over the region; avoid the
        // 0/1 pair so these regions never look like spatial streaming.
        uint32_t trigger = 2 + (group * 61) % 60;
        uint32_t second = (trigger + 3 + member * 7) % 64;
        if (second == trigger)
            second = (second + 1) % 64;

        Template &tm = temps[t];
        tm.offsets.push_back(trigger);
        tm.offsets.push_back(second);
        uint64_t h = mix64(p.seed * 977 + t * 131);
        while (tm.offsets.size() < p.blocksPerTemplate) {
            uint32_t off = static_cast<uint32_t>(h % 64);
            h = mix64(h);
            if (std::find(tm.offsets.begin(), tm.offsets.end(), off)
                == tm.offsets.end())
                tm.offsets.push_back(off);
        }
        tm.pc = p.sharedPc ? 0x500200 : 0x500200 + 0x1000 * t;
    }
    (void)groups;

    // Pages previously visited keep their template binding.
    std::vector<int32_t> pageTemplate(p.numPages, -1);
    uint64_t fresh_page = p.numPages; // fresh pages beyond the pool

    // A pool of open region generations; each step advances one of
    // them by a single element access, so per-region accesses are
    // spread over ~concurrentRegions * accessesPerBlock * gap
    // instructions — room for prefetches to land.
    struct OpenRegion
    {
        Addr pageBase = 0;
        std::vector<uint32_t> order;
        PC pc = 0;
        size_t pos = 0;      ///< index into order
        uint32_t elem = 0;   ///< element access within current block
    };

    auto open_new = [&](OpenRegion &r) {
        uint32_t t;
        uint64_t page_idx;
        if (rng.chance(p.revisitFraction)) {
            page_idx = rng.below(p.numPages);
            if (pageTemplate[page_idx] < 0)
                pageTemplate[page_idx] =
                    static_cast<int32_t>(rng.below(p.numTemplates));
            t = static_cast<uint32_t>(pageTemplate[page_idx]);
        } else {
            page_idx = fresh_page++;
            t = static_cast<uint32_t>(rng.below(p.numTemplates));
        }
        const Template &tm = temps[t];
        r.pageBase = templateArena + page_idx * pageSize;
        // Pick one of the template's call sites; sharedPc collapses
        // the bases, but variants stay template-consistent.
        uint64_t variant = p.pcVariants > 1 ? rng.below(p.pcVariants)
                                            : 0;
        r.pc = tm.pc + 0x10 * variant;
        r.pos = 0;
        r.elem = 0;
        // Adjacent-swap jitter beyond the first two accesses models
        // out-of-order noise without disturbing the trigger/second.
        r.order = tm.offsets;
        if (p.jitter > 0.0) {
            for (size_t i = 3; i + 1 < r.order.size(); i += 2)
                if (rng.chance(p.jitter))
                    std::swap(r.order[i], r.order[i + 1]);
        }
    };

    std::vector<OpenRegion> open(std::max(1u, p.concurrentRegions));
    for (auto &r : open)
        open_new(r);

    while (tb.size() < p.records) {
        OpenRegion &r = open[rng.below(open.size())];
        Addr block_base = r.pageBase
                          + Addr(r.order[r.pos]) * blockSize;
        tb.load(r.pc + 4 * (r.pos % 8), block_base + 8 * r.elem);
        tb.nonMem(p.gapNonMem, r.pc + 0x40);
        if (++r.elem >= p.accessesPerBlock) {
            r.elem = 0;
            if (++r.pos >= r.order.size())
                open_new(r);
        }
    }
    return tb.build();
}

VectorTrace
genPointerChase(const ChaseParams &p)
{
    TraceBuilder tb;
    Rng rng(p.seed);

    // A precomputed random permutation cycle over the node array.
    std::vector<uint32_t> nextNode(p.nodes);
    for (uint64_t i = 0; i < p.nodes; ++i)
        nextNode[i] = static_cast<uint32_t>(i);
    // Fisher-Yates to build one long cycle (Sattolo's algorithm).
    for (uint64_t i = p.nodes - 1; i >= 1; --i) {
        uint64_t j = rng.below(i);
        std::swap(nextNode[i], nextNode[j]);
    }

    uint64_t node = 0;
    while (tb.size() < p.records) {
        Addr va = chaseArena + Addr(node) * blockSize;
        tb.dependentLoad(0x600300, va);
        node = nextNode[node];
        if (p.noiseFraction > 0.0 && rng.chance(p.noiseFraction)) {
            Addr nva = chaseArena + rng.below(p.nodes) * blockSize;
            tb.load(0x600340, nva);
        }
        tb.nonMem(p.gapNonMem, 0x600380);
    }
    return tb.build();
}

VectorTrace
genServer(const ServerParams &p)
{
    TraceBuilder tb;
    Rng rng(p.seed);

    // Inline a sparse-template access stream between front-end stalls.
    TemplateParams data;
    data.seed = p.seed * 31 + 7;
    data.records = p.records;
    data.numTemplates = 12;
    data.conflictDegree = 3;
    data.blocksPerTemplate = 4;
    data.sharedPc = true;
    data.numPages = p.numPages;
    data.revisitFraction = 0.5;
    data.gapNonMem = 0;
    VectorTrace inner = genTemplates(data);
    const auto &recs = inner.data();
    size_t cursor = 0;
    uint64_t since_stall = 0;
    while (tb.size() < p.records && cursor < recs.size()) {
        if (recs[cursor].op != TraceOp::NonMem) {
            tb.load(recs[cursor].pc, recs[cursor].vaddr);
        }
        ++cursor;
        tb.nonMem(p.gapNonMem, 0x700400);
        since_stall += p.gapNonMem + 1;
        if (since_stall >= p.stallPeriod) {
            tb.stall(p.stallCycles);
            since_stall = 0;
        }
    }
    return tb.build();
}

VectorTrace
genStreamHazard(const StreamHazardParams &p)
{
    TraceBuilder tb;
    Rng rng(p.seed);

    uint64_t page_cursor = 0;
    // Dense (frontier-walk) and sparse (vertex-access) code paths are
    // distinct instructions, as in Ligra's BFS loop; the DPCT's
    // per-PC discrimination is exactly what §III-C relies on. The
    // hazard is that sparse *lookalike* regions still start at blocks
    // 0,1, so trigger/second cannot tell them apart.
    const PC dense_pc = 0x800500;
    const PC sparse_pc = 0x800600;

    struct OpenRegion
    {
        Addr pageBase = 0;
        PC pc = 0;
        uint32_t start = 0; ///< first block offset
        uint32_t blocks = 0;
        uint32_t pos = 0;
        uint32_t elem = 0;
    };

    auto open_new = [&](OpenRegion &r) {
        r.pageBase = hazardArena
                     + ((page_cursor++) % p.numPages) * pageSize;
        if (rng.chance(p.denseFraction)) {
            r.blocks = blocksPerPage;
            r.start = 0;
            r.pc = dense_pc;
        } else {
            r.blocks = p.sparseBlocks;
            r.pc = sparse_pc;
            // Only the lookalikes reproduce the hazard (sparse but
            // starting 0,1); other sparse regions start anywhere.
            r.start = rng.chance(p.sparseLookalike)
                          ? 0
                          : static_cast<uint32_t>(rng.below(
                                blocksPerPage - p.sparseBlocks));
        }
        r.pos = 0;
        r.elem = 0;
    };

    std::vector<OpenRegion> open(std::max(1u, p.concurrentRegions));
    for (auto &r : open)
        open_new(r);

    while (tb.size() < p.records) {
        OpenRegion &r = open[rng.below(open.size())];
        Addr block_base = r.pageBase
                          + Addr(r.start + r.pos) * blockSize;
        tb.load(r.pc + 4 * (r.pos % 4), block_base + 8 * r.elem);
        tb.nonMem(p.gapNonMem, r.pc + 0x20);
        if (++r.elem >= p.accessesPerBlock) {
            r.elem = 0;
            if (++r.pos >= r.blocks)
                open_new(r);
        }
    }
    return tb.build();
}

} // namespace gaze
