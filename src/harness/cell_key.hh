/**
 * @file
 * Canonical cell identity for content-addressed result caching. One
 * "cell" is everything that determines a simulation's outcome: the
 * full SystemConfig, the resolved phase lengths, the prefetcher spec,
 * and the identity of every workload in the mix (generator + scale,
 * or recorded-trace checksum). Two processes that canonicalize the
 * same experiment get the same text and therefore the same FNV-1a
 * hash, which is what the campaign cache files are named after and
 * what the shared BaselineCache is keyed by.
 *
 * The schema version is baked into the text: bump it whenever the
 * simulator's observable behavior changes (new stat, different
 * timing), and every previously cached cell silently misses instead
 * of serving stale results.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "workloads/suites.hh"

namespace gaze
{

/**
 * Bump on any change that invalidates previously cached results.
 *
 * v2: prefetcher specs inside the cell text are canonicalized by the
 * registry (aliases resolved, options sorted, defaults elided), so a
 * v1 record keyed by a raw spelling must read as a miss even when its
 * spelling happened to be canonical.
 *
 * v3: cell records gained the engine-speed slice of RunSummary
 * (events_dispatched, cycles_executed, cycles_skipped,
 * minstr_per_sec); v2 records lack the fields and must recompute.
 *
 * v4: cell records gained the late-miss split (pf_late_load,
 * pf_late_rfo) and the per-scheme lifecycle attribution ("schemes"
 * array); v3 records lack the fields and must recompute. Note that
 * obs *settings* (ObsConfig: sampler interval, trace sink) are
 * deliberately NOT part of the canonical text — obs never perturbs
 * simulated state, so a cell computed with tracing on is the same
 * cell computed with it off.
 */
constexpr uint32_t kCellSchemaVersion = 4;

/**
 * The canonical, human-auditable identity text of one cell. Covers
 * every SystemConfig field, the effective (scale-resolved) warmup and
 * measured instruction counts, the prefetcher spec, and each mix
 * member's workloadIdentity(). Deterministic across processes.
 */
std::string canonicalCellText(const RunConfig &cfg, const PfSpec &pf,
                              const std::vector<WorkloadDef> &mix);

/** FNV-1a 64 of the canonical text (the cache address of the cell). */
uint64_t cellHash(const std::string &canonical_text);

/** The cache file stem: 16 lowercase hex digits. */
std::string cellHashHex(uint64_t hash);

} // namespace gaze
