#include "harness/export.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace gaze
{
namespace
{

const char *
resultsDir()
{
    return std::getenv("GAZE_RESULTS_DIR");
}

} // namespace

CsvExport::CsvExport(std::string name_)
    : name(std::move(name_))
{
}

bool
CsvExport::enabled()
{
    const char *dir = resultsDir();
    return dir != nullptr && dir[0] != '\0';
}

void
CsvExport::header(std::vector<std::string> columns)
{
    head = std::move(columns);
}

void
CsvExport::row(std::vector<std::string> cells)
{
    GAZE_ASSERT(head.empty() || cells.size() == head.size(),
                "csv row width mismatch in ", name);
    rows.push_back(std::move(cells));
}

std::string
CsvExport::escape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
CsvExport::toCsv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ',';
            os << escape(cells[i]);
        }
        os << '\n';
    };
    if (!head.empty())
        emit(head);
    for (const auto &r : rows)
        emit(r);
    return os.str();
}

std::string
CsvExport::write() const
{
    if (!enabled())
        return {};
    std::string path = std::string(resultsDir()) + "/" + name + ".csv";
    std::ofstream out(path);
    if (!out)
        GAZE_FATAL("cannot write results file '", path, "'");
    out << toCsv();
    return path;
}

} // namespace gaze
