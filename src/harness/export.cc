#include "harness/export.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace gaze
{
namespace
{

const char *
resultsDir()
{
    return std::getenv("GAZE_RESULTS_DIR");
}

} // namespace

CsvExport::CsvExport(std::string name_)
    : name(std::move(name_))
{
}

bool
CsvExport::enabled()
{
    const char *dir = resultsDir();
    return dir != nullptr && dir[0] != '\0';
}

void
CsvExport::header(std::vector<std::string> columns)
{
    head = std::move(columns);
}

void
CsvExport::row(std::vector<std::string> cells)
{
    GAZE_ASSERT(head.empty() || cells.size() == head.size(),
                "csv row width mismatch in ", name);
    rows.push_back(std::move(cells));
}

std::string
CsvExport::escape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
CsvExport::toCsv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ',';
            os << escape(cells[i]);
        }
        os << '\n';
    };
    if (!head.empty())
        emit(head);
    for (const auto &r : rows)
        emit(r);
    return os.str();
}

std::string
CsvExport::write() const
{
    if (!enabled())
        return {};
    std::string path = std::string(resultsDir()) + "/" + name + ".csv";
    std::ofstream out(path);
    if (!out)
        GAZE_FATAL("cannot write results file '", path, "'");
    out << toCsv();
    return path;
}

void
JsonWriter::separate()
{
    if (stack.empty()) {
        GAZE_ASSERT(!rootUsed, "json document already has a root value");
        rootUsed = true;
    } else {
        if (stack.back() == Scope::Object) {
            GAZE_ASSERT(keyPending, "json value without a key in object");
        } else if (!keyPending) {
            if (!first.back())
                out += ',';
            first.back() = false;
        }
    }
    keyPending = false;
}

void
JsonWriter::append(const std::string &text)
{
    separate();
    out += text;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string r = "\"";
    for (char c : s) {
        switch (c) {
          case '"': r += "\\\""; break;
          case '\\': r += "\\\\"; break;
          case '\n': r += "\\n"; break;
          case '\r': r += "\\r"; break;
          case '\t': r += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                r += buf;
            } else {
                r += c;
            }
        }
    }
    r += '"';
    return r;
}

JsonWriter &
JsonWriter::beginObject()
{
    append("{");
    stack.push_back(Scope::Object);
    first.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    GAZE_ASSERT(!stack.empty() && stack.back() == Scope::Object
                    && !keyPending,
                "unbalanced json object");
    stack.pop_back();
    first.pop_back();
    out += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    append("[");
    stack.push_back(Scope::Array);
    first.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    GAZE_ASSERT(!stack.empty() && stack.back() == Scope::Array,
                "unbalanced json array");
    stack.pop_back();
    first.pop_back();
    out += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    GAZE_ASSERT(!stack.empty() && stack.back() == Scope::Object
                    && !keyPending,
                "json key outside object");
    if (!first.back())
        out += ',';
    first.back() = false;
    out += escape(k);
    out += ':';
    keyPending = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    append(escape(v));
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    if (!std::isfinite(v)) {
        append("null");
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    append(buf);
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    append(std::to_string(v));
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    append(std::to_string(v));
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    append(v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::nullValue()
{
    append("null");
    return *this;
}

std::string
JsonWriter::str() const
{
    GAZE_ASSERT(stack.empty(), "json document has open scopes");
    GAZE_ASSERT(rootUsed, "json document is empty");
    return out;
}

JsonExport::JsonExport(std::string name_, std::string json_text)
    : name(std::move(name_)), text(std::move(json_text))
{
}

std::string
JsonExport::fileName() const
{
    return "BENCH_" + name + ".json";
}

std::string
JsonExport::defaultPath() const
{
    if (CsvExport::enabled())
        return std::string(resultsDir()) + "/" + fileName();
    return fileName();
}

std::string
JsonExport::write() const
{
    return writeTo(defaultPath());
}

std::string
JsonExport::writeTo(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        GAZE_FATAL("cannot write results file '", path, "'");
    out << text << '\n';
    return path;
}

} // namespace gaze
