#include "harness/table.hh"

#include <cstdio>
#include <sstream>

#include "common/log.hh"

namespace gaze
{

TextTable::TextTable(std::vector<std::string> headers)
    : header(std::move(headers))
{
    GAZE_ASSERT(!header.empty(), "table without columns");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    GAZE_ASSERT(cells.size() == header.size(),
                "row width ", cells.size(), " != header width ",
                header.size());
    rows.push_back(std::move(cells));
}

std::string
TextTable::toString() const
{
    std::vector<size_t> width(header.size());
    for (size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](std::ostringstream &os,
                    const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size())
                for (size_t i = cells[c].size(); i < width[c] + 2; ++i)
                    os << ' ';
        }
        os << '\n';
    };

    std::ostringstream os;
    emit(os, header);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        emit(os, row);
    return os.str();
}

std::string
TextTable::fmt(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
TextTable::pct(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, v * 100.0);
    return buf;
}

} // namespace gaze
