/**
 * @file
 * Analytic storage accounting for Table I (Gaze's breakdown) and
 * Table IV (configuration and storage of every evaluated scheme).
 * Bits are computed from the paper's field lists; the tables also
 * carry the paper's published byte figures for comparison.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gaze
{

/** One storage row: structure name, description, modeled bits. */
struct StorageRow
{
    std::string structure;
    std::string description;
    uint64_t bits = 0;

    double kib() const { return double(bits) / 8.0 / 1024.0; }
};

/** Table I: Gaze's per-structure storage breakdown. */
std::vector<StorageRow> gazeStorageBreakdown();

/** Per-scheme total storage (Table IV), modeled from our instances. */
struct SchemeStorage
{
    std::string scheme;
    std::string configuration;
    uint64_t bits = 0;
    double paperKib = 0.0; ///< the figure Table IV reports

    double kib() const { return double(bits) / 8.0 / 1024.0; }
};

std::vector<SchemeStorage> evaluatedSchemeStorage();

} // namespace gaze
