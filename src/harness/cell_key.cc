#include "harness/cell_key.hh"

#include <cstdio>
#include <sstream>

#include "tracing/trace_format.hh"

namespace gaze
{
namespace
{

/** Shortest round-trip-exact rendering of a double. */
std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

std::string
canonicalCellText(const RunConfig &cfg, const PfSpec &pf,
                  const std::vector<WorkloadDef> &mix)
{
    const SystemConfig &s = cfg.system;
    std::ostringstream os;
    os << "schema=" << kCellSchemaVersion;

    // The runner overrides numCores with the mix size, so the mix is
    // the authoritative core count — SystemConfig::numCores is
    // deliberately absent.
    os << ";core=" << s.core.fetchWidth << '/' << s.core.retireWidth
       << '/' << s.core.robSize << '/' << s.core.lqSize << '/'
       << s.core.sqSize << '/' << s.core.loadPorts;
    os << ";l1d=" << s.l1dBytes << '/' << s.l1dWays << '/'
       << s.l1dLatency << '/' << s.l1dMshrs;
    os << ";l2=" << s.l2Bytes << '/' << s.l2Ways << '/' << s.l2Latency
       << '/' << s.l2Mshrs;
    os << ";llc=" << s.llcBytesPerCore << '/' << s.llcWays << '/'
       << s.llcLatency << '/' << s.llcMshrsPerCore;
    os << ";repl=" << s.replacement;
    os << ";dram=" << (s.dramAuto ? "auto" : "explicit") << '/'
       << s.dram.channels << '/' << s.dram.ranksPerChannel << '/'
       << s.dram.banksPerRank << '/' << s.dram.rowBufferBytes << '/'
       << fmtDouble(s.dram.mtps) << '/' << fmtDouble(s.dram.cpuGhz)
       << '/' << s.dram.busWidthBits << '/' << fmtDouble(s.dram.tRpNs)
       << '/' << fmtDouble(s.dram.tRcdNs) << '/'
       << fmtDouble(s.dram.tCasNs) << '/' << s.dram.rqSize << '/'
       << s.dram.wqSize << '/' << s.dram.wqDrainHigh << '/'
       << s.dram.wqDrainLow;
    os << ";max_cpi=" << s.maxCyclesPerInstr;

    // Effective (scale-resolved) phases: two processes with different
    // GAZE_SIM_SCALE but identical resolved lengths share cells.
    os << ";warmup=" << cfg.effectiveWarmup();
    os << ";sim=" << cfg.effectiveSim();

    os << ";pf=" << pf.l1 << '+' << pf.l2;

    os << ";mix=";
    for (size_t i = 0; i < mix.size(); ++i) {
        if (i)
            os << ',';
        os << workloadIdentity(mix[i]);
    }
    return os.str();
}

uint64_t
cellHash(const std::string &canonical_text)
{
    Fnv1a h;
    h.update(reinterpret_cast<const uint8_t *>(canonical_text.data()),
             canonical_text.size());
    return h.digest();
}

std::string
cellHashHex(uint64_t hash)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

} // namespace gaze
