/**
 * @file
 * Machine-readable result export, mirroring the paper artifact's
 * json-directory workflow: when GAZE_RESULTS_DIR is set, every bench
 * writes its tables as CSV files there (one per experiment), so the
 * figures can be re-plotted without scraping stdout.
 */

#ifndef GAZE_HARNESS_EXPORT_HH
#define GAZE_HARNESS_EXPORT_HH

#include <string>
#include <vector>

namespace gaze
{

/** A named grid of cells destined for "<dir>/<name>.csv". */
class CsvExport
{
  public:
    /** @param name experiment id, e.g. "fig06_speedup". */
    explicit CsvExport(std::string name);

    /** Set the header row. */
    void header(std::vector<std::string> columns);

    /** Append a data row (quoted/escaped as needed). */
    void row(std::vector<std::string> cells);

    /**
     * Write to $GAZE_RESULTS_DIR/<name>.csv. No-op (returns empty)
     * when the variable is unset; returns the written path otherwise.
     * Fatal if the directory is not writable.
     */
    std::string write() const;

    /** Render as CSV text (exposed for tests). */
    std::string toCsv() const;

    /** True when GAZE_RESULTS_DIR is configured. */
    static bool enabled();

  private:
    static std::string escape(const std::string &cell);

    std::string name;
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

} // namespace gaze

#endif // GAZE_HARNESS_EXPORT_HH
