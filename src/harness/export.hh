/**
 * @file
 * Machine-readable result export, mirroring the paper artifact's
 * json-directory workflow: when GAZE_RESULTS_DIR is set, every bench
 * writes its tables as CSV files there (one per experiment), so the
 * figures can be re-plotted without scraping stdout. The suite-runner
 * CLI additionally writes whole-matrix results as BENCH_<name>.json
 * documents through JsonWriter/JsonExport.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gaze
{

/** A named grid of cells destined for "<dir>/<name>.csv". */
class CsvExport
{
  public:
    /** @param name experiment id, e.g. "fig06_speedup". */
    explicit CsvExport(std::string name);

    /** Set the header row. */
    void header(std::vector<std::string> columns);

    /** Append a data row (quoted/escaped as needed). */
    void row(std::vector<std::string> cells);

    /**
     * Write to $GAZE_RESULTS_DIR/<name>.csv. No-op (returns empty)
     * when the variable is unset; returns the written path otherwise.
     * Fatal if the directory is not writable.
     */
    std::string write() const;

    /** Render as CSV text (exposed for tests). */
    std::string toCsv() const;

    /** True when GAZE_RESULTS_DIR is configured. */
    static bool enabled();

  private:
    static std::string escape(const std::string &cell);

    std::string name;
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

/**
 * Incremental JSON document builder with correct string escaping and
 * strictly finite numbers (non-finite doubles become null). Usage
 * errors (value without a key inside an object, unbalanced scopes)
 * are fatal assertions, so a malformed document can never be written.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Start a "key": inside the current object. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);

    /** Explicit null (e.g. "no trace provenance"). */
    JsonWriter &nullValue();

    /** Shorthand for key(k).value(v). */
    template <typename T>
    JsonWriter &
    field(const std::string &k, const T &v)
    {
        return key(k).value(v);
    }

    /** Finished document text (fatal if scopes are still open). */
    std::string str() const;

  private:
    enum class Scope { Object, Array };

    void separate();
    void append(const std::string &text);
    static std::string escape(const std::string &s);

    std::string out;
    std::vector<Scope> stack;
    std::vector<bool> first;   ///< no comma needed yet, per scope
    bool keyPending = false;
    bool rootUsed = false;     ///< exactly one top-level value allowed
};

/**
 * A named JSON result document destined for "BENCH_<name>.json",
 * written next to the CSVs in $GAZE_RESULTS_DIR (or to an explicit
 * path via writeTo, which the gaze_sim --out flag uses).
 */
class JsonExport
{
  public:
    /**
     * @param name experiment id, e.g. "gaze_sim".
     * @param json_text the finished document (JsonWriter::str()).
     */
    JsonExport(std::string name, std::string json_text);

    /** Default file name: BENCH_<name>.json. */
    std::string fileName() const;

    /**
     * Default location: $GAZE_RESULTS_DIR/BENCH_<name>.json when the
     * variable is set, BENCH_<name>.json in the cwd otherwise.
     */
    std::string defaultPath() const;

    /** Write to defaultPath(); returns it. Fatal if not writable. */
    std::string write() const;

    /** Write to an explicit path. Fatal if not writable. */
    std::string writeTo(const std::string &path) const;

  private:
    std::string name;
    std::string text;
};

} // namespace gaze
