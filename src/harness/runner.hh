/**
 * @file
 * Experiment runner: builds a System per (configuration, prefetcher,
 * workload/mix), executes warmup + measured phases, and caches the
 * no-prefetch baselines that speedup/coverage are computed against.
 * Every bench binary drives simulations exclusively through this.
 */

#pragma once

#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "harness/metrics.hh"
#include "sim/system.hh"
#include "workloads/suites.hh"

namespace gaze
{

namespace obs
{
class TraceSink;
}

/**
 * Observability attachments for a run. Deliberately NOT part of the
 * canonical cell text (harness/cell_key): obs never perturbs simulated
 * state — obs-on runs are bitwise identical to obs-off runs
 * (test_engine_diff proves it) — so cached campaign cells stay valid
 * whatever the obs settings are.
 */
struct ObsConfig
{
    /** Interval-sampler epoch in cycles; 0 disables the timeline. */
    uint64_t samplerInterval = 0;

    /** Trace sink for sim-time spans (not owned; null = no tracing). */
    obs::TraceSink *trace = nullptr;

    bool enabled() const { return samplerInterval != 0 || trace; }
};

/** One experiment's fixed context: system config + phase lengths. */
struct RunConfig
{
    SystemConfig system;

    /** Warmup instructions per core (0 = derive from scale). */
    uint64_t warmupInstr = 0;

    /** Measured instructions per core (0 = derive from scale). */
    uint64_t simInstr = 0;

    /** Observability hooks (excluded from the cell key; see above). */
    ObsConfig obs;

    uint64_t effectiveWarmup() const;
    uint64_t effectiveSim() const;
};

/** Prefetcher selection for one run. */
struct PfSpec
{
    std::string l1 = "none";
    std::string l2 = "none";

    bool isNone() const { return l1 == "none" && l2 == "none"; }

    std::string
    label() const
    {
        return l2 == "none" ? l1 : l1 + "+" + l2;
    }
};

/**
 * Build a PfSpec attaching factory spec @p spec at @p level ("l1" or
 * "l2"); fatal on anything else. Shared by the matrix driver and the
 * campaign expansion so the level axis is validated identically.
 */
PfSpec pfSpecAt(const std::string &spec, const std::string &level);

/**
 * Thread-safe memo of no-prefetch baseline runs, keyed by the
 * canonical cell text (harness/cell_key — config + phases + mix
 * identity, so it is safe to share across Runners with different
 * configs). The first caller for a key computes; concurrent callers
 * for the same key block on a shared future instead of racing the map
 * or recomputing the simulation. Share one instance across the
 * thread-pool workers of a matrix or campaign run by passing it to
 * each Runner.
 *
 * Residency is bounded for long-running processes (gaze_serve): at
 * most @p capacity completed entries stay resident, evicted least
 * recently used. In-flight entries are never evicted, so the
 * compute-once and failure-propagation guarantees hold at any
 * capacity: every caller that attaches to an in-flight key gets that
 * computation's result or exception. An evicted key simply recomputes
 * on its next request.
 */
class BaselineCache
{
  public:
    /** Default LRU capacity — generous: a full paper-scale sweep has
        well under this many distinct (config, mix) baselines. */
    static constexpr size_t kDefaultCapacity = 256;

    /** @p capacity 0 means unbounded. */
    explicit BaselineCache(size_t capacity = kDefaultCapacity);

    /**
     * Return the cached result for @p key, running @p compute (and
     * publishing its result) if this is the first request. If compute
     * throws, the exception propagates to every waiter of this key.
     * Returns by value: eviction may drop the cache's own copy at any
     * time, so no reference into the cache can be handed out safely.
     */
    RunResult getOrCompute(const std::string &key,
                           const std::function<RunResult()> &compute);

    size_t size() const;
    size_t capacity() const { return cap; }
    uint64_t evictions() const;

  private:
    struct Entry
    {
        std::shared_future<RunResult> fut;
        bool ready = false; ///< result (or exception) published
        std::list<std::string>::iterator lruIt; ///< valid when ready
    };

    void evictLocked();

    mutable std::mutex mtx;
    size_t cap;
    uint64_t evicted = 0;
    /** Node-based map: shared-state references outlive inserts. */
    std::map<std::string, Entry> entries;
    std::list<std::string> lru; ///< ready keys, most recent first
};

/**
 * Runs workloads under one RunConfig, memoizing baselines. A Runner
 * itself is not thread safe, but its baseline cache may be shared: by
 * default each Runner owns a private BaselineCache; pass a shared one
 * to deduplicate baselines across Runners and across pool workers.
 */
class Runner
{
  public:
    explicit Runner(const RunConfig &config,
                    std::shared_ptr<BaselineCache> baselines = nullptr);

    /** Single-core run of @p w with @p pf. */
    RunResult run(const WorkloadDef &w, const PfSpec &pf);

    /** Multi-core run: one workload per core (homogeneous = N copies). */
    RunResult runMix(const std::vector<WorkloadDef> &mix,
                     const PfSpec &pf);

    /** Cached no-prefetch baseline for @p w. */
    RunResult baseline(const WorkloadDef &w);

    /** Cached no-prefetch baseline for a mix. */
    RunResult baselineMix(const std::vector<WorkloadDef> &mix);

    /** Convenience: run + baseline + metric math. */
    PrefetchMetrics evaluate(const WorkloadDef &w, const PfSpec &pf);

    /** Mix evaluation (speedup from mean IPC, as the paper plots). */
    PrefetchMetrics evaluateMix(const std::vector<WorkloadDef> &mix,
                                const PfSpec &pf);

    const RunConfig &config() const { return cfg; }

  private:
    RunResult execute(const std::vector<WorkloadDef> &mix,
                      const PfSpec &pf);

    RunConfig cfg;
    std::shared_ptr<BaselineCache> baselines;
};

/**
 * Suite-level helper: geometric-mean speedup of @p pf over the
 * workloads of @p suite (the bars of Figs. 6-8).
 */
struct SuiteSummary
{
    double speedup = 1.0;
    double accuracy = 0.0;
    double coverage = 0.0;
    double lateFraction = 0.0;
};

SuiteSummary evaluateSuite(Runner &runner,
                           const std::vector<WorkloadDef> &workloads,
                           const PfSpec &pf);

} // namespace gaze
