/**
 * @file
 * The one sanctioned reader of the host clock. Simulated time is
 * always derived from instruction/cycle counts; host wall-clock time
 * is *only* legitimate as informational throughput reporting (cell
 * seconds, Minstr/s), and every such reading must flow through this
 * shim so published metrics can never silently depend on the host.
 *
 * gaze_lint's `wall-clock` rule fails any other file in src/ that
 * calls rand(), time(), steady_clock::now() (or any sibling clock),
 * or std::random_device directly; this header is the rule's whitelist.
 */

#pragma once

#include <chrono>

namespace gaze
{

/** Opaque monotonic timestamp; only useful for differences. */
using WallTime = std::chrono::steady_clock::time_point;

/** Read the host monotonic clock (the whitelisted call site). */
inline WallTime
wallNow()
{
    return std::chrono::steady_clock::now();
}

/** Seconds elapsed since @p start, as a double. */
inline double
wallSecondsSince(WallTime start)
{
    return std::chrono::duration<double>(wallNow() - start).count();
}

/** Starts timing at construction; seconds() reads the elapsed time. */
class WallTimer
{
  public:
    WallTimer() : start(wallNow()) {}

    double seconds() const { return wallSecondsSince(start); }

  private:
    WallTime start;
};

} // namespace gaze
