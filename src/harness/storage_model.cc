#include "harness/storage_model.hh"

#include "core/gaze.hh"
#include "prefetchers/factory.hh"

namespace gaze
{

std::vector<StorageRow>
gazeStorageBreakdown()
{
    GazeConfig cfg;
    uint32_t blocks = cfg.blocksPerRegion();

    std::vector<StorageRow> rows;
    rows.push_back({"FT",
                    "8-way, 64 entries: region tag 36b + LRU 3b + "
                    "hashed PC 12b + trigger offset 6b",
                    uint64_t(cfg.ftSets) * cfg.ftWays * (36 + 3 + 12 + 6)});
    rows.push_back({"AT",
                    "8-way, 64 entries: tag 36b + LRU 3b + hashed PC "
                    "12b + stride flag 1b + trigger/second 2x6b + "
                    "last/penult 2x6b + bit vector 64b",
                    uint64_t(cfg.atSets) * cfg.atWays
                        * (36 + 3 + 12 + 1 + 12 + 12 + blocks)});
    rows.push_back({"PHT",
                    "4-way, 256 entries: tag 6b + LRU 2b + bit vector "
                    "64b",
                    uint64_t(cfg.phtSets) * cfg.phtWays
                        * (6 + 2 + blocks)});
    rows.push_back({"DPCT",
                    "fully associative, 8 entries: hashed PC 12b + "
                    "LRU 3b (+ 3b DC)",
                    uint64_t(cfg.dpctEntries) * (12 + 3) + 3});
    rows.push_back({"PB",
                    "8-way, 32 entries: region tag 36b + LRU 3b + "
                    "pattern 64x2b",
                    uint64_t(cfg.pbEntries) * (36 + 3 + 2 * blocks)});
    return rows;
}

std::vector<SchemeStorage>
evaluatedSchemeStorage()
{
    // Paper Table IV figures (KB) for reference alongside our model.
    struct Def
    {
        const char *spec;
        const char *configuration;
        double paperKib;
    };
    const Def defs[] = {
        {"sms", "2KB region, 64-entry FT/AT, 16k-entry PHT, 32-entry PB",
         116.6},
        {"bingo", "2KB region, 64-entry FT/AT, 16k-entry PHT, 32-entry PB",
         138.6},
        {"dspatch", "2KB region, 64-entry PageBuffer, 256-entry SPT, "
                    "32-entry PB",
         4.25},
        {"pmp", "4KB region, 64-entry FT/AT, 64-entry OPT, 32-entry PPT, "
                "MaxConf 32, L1/L2 thresh 0.5/0.15",
         5.0},
        {"ipcp", "64-entry IP table, 128-entry CSPT, 8-entry RST, "
                 "32-entry RR",
         0.7},
        {"spp_ppf", "SPP (256 ST, 512 PT) + perceptron filter", 39.3},
        {"vberti", "virtual address, eight-page prefetch range", 2.55},
        {"gaze", "4KB region, Table I configuration", 4.46},
    };

    std::vector<SchemeStorage> rows;
    for (const auto &d : defs) {
        auto pf = makePrefetcher(d.spec);
        SchemeStorage s;
        s.scheme = d.spec;
        s.configuration = d.configuration;
        s.bits = pf->storageBits();
        s.paperKib = d.paperKib;
        rows.push_back(std::move(s));
    }
    return rows;
}

} // namespace gaze
