/**
 * @file
 * Fixed-width text table used by every bench binary to print the
 * paper's figures/tables as aligned rows.
 */

#pragma once

#include <string>
#include <vector>

namespace gaze
{

/** A simple column-aligned text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append a full row (must match the header width). */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns and a header rule. */
    std::string toString() const;

    /** Format helpers. */
    static std::string fmt(double v, int digits = 3);
    static std::string pct(double v, int digits = 1);

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace gaze
