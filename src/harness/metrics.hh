/**
 * @file
 * Metric definitions from §IV-A3:
 *
 *  - Speedup: IPC with prefetching / IPC without.
 *  - Overall accuracy: useful prefetched blocks at L1D and L2C over
 *    all prefetched blocks filled at those levels (na+ma over
 *    na+nb+ma+mb) — L2C-targeted prefetches count even though the L1D
 *    cannot see them.
 *  - LLC coverage: fraction of baseline LLC demand misses removed by
 *    prefetching.
 *  - Late fraction: demand hits on in-flight prefetch MSHRs over all
 *    useful prefetches (late ones included).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/sampler.hh"
#include "sim/cache.hh"
#include "sim/dram.hh"
#include "sim/system.hh"

namespace gaze
{

/**
 * Obs attribution: lifecycle counts of one prefetching scheme, summed
 * over L1D + L2 across cores — the same levels the aggregate pf
 * counters (and §IV-A3 accuracy) are summed over. The scheme label is
 * System::schemeNames() form: "<scheme>@l1" / "<scheme>@l2".
 */
struct SchemeCount
{
    std::string name;
    uint64_t issued = 0;
    uint64_t filled = 0;
    uint64_t useful = 0;
    uint64_t late = 0;
    uint64_t useless = 0;
    uint64_t fillToUseSum = 0;
    uint64_t fillToUseCnt = 0;
};

/** Aggregated outcome of one simulation run. */
struct RunResult
{
    std::vector<CoreResult> cores;

    CacheStats l1d;  ///< summed over cores
    CacheStats l2;   ///< summed over cores
    CacheStats llc;
    DramStats dram;

    /** Per-scheme lifecycle attribution (id order; empty w/o obs). */
    std::vector<SchemeCount> schemes;

    /** --obs-timeline samples (empty unless a sampler was attached). */
    obs::SampleSeries obsSamples;

    /** Simulation-speed counters (whole run: warmup + measured). */
    EngineStats engine;

    /** Wall-clock seconds the simulation took (warmup + measured). */
    double wallSeconds = 0.0;

    /** Instructions retired across cores, warmup/replay included. */
    uint64_t instructionsRetired = 0;

    /** Arithmetic-mean IPC across cores (per-core IPCs for mixes). */
    double ipc() const;

    /** Per-core IPC. */
    double coreIpc(uint32_t cpu) const { return cores[cpu].ipc(); }

    /** Simulation throughput in million instructions per second. */
    double
    minstrPerSec() const
    {
        return wallSeconds > 0.0
                   ? double(instructionsRetired) / wallSeconds / 1e6
                   : 0.0;
    }
};

/**
 * Derived per-scheme metrics (obs attribution): the accuracy /
 * coverage / timeliness / pollution breakdown of one issuing scheme.
 */
struct SchemeMetrics
{
    std::string name;
    uint64_t issued = 0;
    uint64_t filled = 0;
    uint64_t useful = 0;
    uint64_t late = 0;
    uint64_t useless = 0;

    /** (useful + late) / (filled + late), as the aggregate metric. */
    double accuracy = 0.0;
    /** useful / baseline LLC demand misses (capped at 1). */
    double coverage = 0.0;
    /** useless / filled: fills evicted untouched. */
    double pollution = 0.0;
    /** late / (useful + late): timeliness, lower is better. */
    double lateFraction = 0.0;
    /** Mean fill-to-first-demand-hit latency in cycles. */
    double avgFillToUse = 0.0;
};

/** Derived prefetching metrics for a (baseline, prefetch) run pair. */
struct PrefetchMetrics
{
    double speedup = 1.0;
    double accuracy = 0.0;
    double coverage = 0.0;
    double lateFraction = 0.0;

    uint64_t pfIssued = 0;
    uint64_t pfFilled = 0;
    uint64_t pfUseful = 0;
    uint64_t pfLate = 0;
    /** pfLate split by demand type (satellite of the late-miss stat). */
    uint64_t pfLateLoad = 0;
    uint64_t pfLateRfo = 0;
    uint64_t llcMissBase = 0;
    uint64_t llcMissPf = 0;

    /** Per-scheme breakdown, in scheme-id order (empty w/o obs). */
    std::vector<SchemeMetrics> schemes;
};

/**
 * The slice of a RunResult the metric math actually consumes — what
 * the campaign result cache persists per cell, so a cached cell and a
 * fresh run feed computeMetrics identically. Prefetch counters are
 * summed over L1D + L2, exactly as computeMetrics sums them.
 */
struct RunSummary
{
    double ipc = 0.0;
    uint64_t pfIssued = 0;
    uint64_t pfFilled = 0;
    uint64_t pfUseful = 0;
    uint64_t pfLate = 0;
    /** pfLate split by demand type (loadMissLate/rfoMissLate sums). */
    uint64_t pfLateLoad = 0;
    uint64_t pfLateRfo = 0;
    uint64_t llcDemandMiss = 0;

    /** Per-scheme lifecycle attribution (cell-record schema v4). */
    std::vector<SchemeCount> schemes;

    // Engine-speed slice. The cycle/event counters are deterministic
    // (the engine is bit-exact), so cached cells reproduce them;
    // minstrPerSec is informational wall-clock throughput and is kept
    // out of campaign report aggregation for that reason.
    uint64_t eventsDispatched = 0;
    uint64_t cyclesExecuted = 0;
    uint64_t cyclesSkipped = 0;
    double minstrPerSec = 0.0;
};

/** Reduce a full RunResult to the metric-relevant slice. */
RunSummary summarize(const RunResult &r);

/** Sum per-level stats out of a finished system. */
RunResult collectResult(System &sys, std::vector<CoreResult> cores);

/** Compute the §IV-A3 metrics from a baseline/prefetch pair. */
PrefetchMetrics computeMetrics(const RunSummary &base,
                               const RunSummary &with_pf);
PrefetchMetrics computeMetrics(const RunResult &base,
                               const RunResult &with_pf);

/** Geometric mean of speedups (suite aggregation). */
double geomean(const std::vector<double> &values);

} // namespace gaze
