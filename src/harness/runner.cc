#include "harness/runner.hh"

#include "common/log.hh"
#include "prefetchers/factory.hh"

namespace gaze
{

uint64_t
RunConfig::effectiveWarmup() const
{
    return warmupInstr ? warmupInstr : scaledRecords(200'000);
}

uint64_t
RunConfig::effectiveSim() const
{
    return simInstr ? simInstr : scaledRecords(400'000);
}

Runner::Runner(const RunConfig &config)
    : cfg(config)
{
}

std::string
Runner::mixKey(const std::vector<WorkloadDef> &mix) const
{
    std::string key;
    for (const auto &w : mix) {
        key += w.name;
        // A file-backed workload is a distinct experiment from the
        // generator of the same name; don't share baselines.
        if (!w.traceFile.empty()) {
            key += '@';
            key += w.traceFile;
        }
        key += '|';
    }
    return key;
}

RunResult
Runner::execute(const std::vector<WorkloadDef> &mix, const PfSpec &pf)
{
    SystemConfig sys_cfg = cfg.system;
    sys_cfg.numCores = static_cast<uint32_t>(mix.size());
    System sys(sys_cfg);

    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.reserve(mix.size());
    for (const auto &w : mix)
        traces.push_back(w.open());
    for (uint32_t c = 0; c < sys.numCores(); ++c)
        sys.setTrace(c, traces[c].get());

    for (uint32_t c = 0; c < sys.numCores(); ++c) {
        sys.setL1Prefetcher(c, makePrefetcher(pf.l1));
        sys.setL2Prefetcher(c, makePrefetcher(pf.l2));
    }

    sys.run(cfg.effectiveWarmup());
    sys.resetStats();
    auto cores = sys.simulate(cfg.effectiveSim());
    return collectResult(sys, std::move(cores));
}

RunResult
Runner::run(const WorkloadDef &w, const PfSpec &pf)
{
    return execute({w}, pf);
}

RunResult
Runner::runMix(const std::vector<WorkloadDef> &mix, const PfSpec &pf)
{
    return execute(mix, pf);
}

const RunResult &
Runner::baseline(const WorkloadDef &w)
{
    return baselineMix({w});
}

const RunResult &
Runner::baselineMix(const std::vector<WorkloadDef> &mix)
{
    std::string key = mixKey(mix);
    auto it = baselineCache.find(key);
    if (it != baselineCache.end())
        return it->second;
    RunResult r = execute(mix, PfSpec{});
    return baselineCache.emplace(key, std::move(r)).first->second;
}

PrefetchMetrics
Runner::evaluate(const WorkloadDef &w, const PfSpec &pf)
{
    const RunResult &base = baseline(w);
    RunResult r = run(w, pf);
    return computeMetrics(base, r);
}

PrefetchMetrics
Runner::evaluateMix(const std::vector<WorkloadDef> &mix, const PfSpec &pf)
{
    const RunResult &base = baselineMix(mix);
    RunResult r = runMix(mix, pf);
    return computeMetrics(base, r);
}

SuiteSummary
evaluateSuite(Runner &runner, const std::vector<WorkloadDef> &workloads,
              const PfSpec &pf)
{
    GAZE_ASSERT(!workloads.empty(), "empty suite");
    std::vector<double> speedups;
    double acc = 0.0, cov = 0.0, late = 0.0;
    for (const auto &w : workloads) {
        PrefetchMetrics m = runner.evaluate(w, pf);
        speedups.push_back(m.speedup);
        acc += m.accuracy;
        cov += m.coverage;
        late += m.lateFraction;
    }
    SuiteSummary s;
    s.speedup = geomean(speedups);
    s.accuracy = acc / double(workloads.size());
    s.coverage = cov / double(workloads.size());
    s.lateFraction = late / double(workloads.size());
    return s;
}

} // namespace gaze
