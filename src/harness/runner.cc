#include "harness/runner.hh"

#include "harness/wallclock.hh"

#include "common/log.hh"
#include "harness/cell_key.hh"
#include "obs/obs.hh"
#include "obs/registry.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "prefetchers/factory.hh"
#include "prefetchers/registry.hh"

namespace gaze
{

PfSpec
pfSpecAt(const std::string &spec, const std::string &level)
{
    // Canonicalize (and thereby validate) here, at the single choke
    // point every matrix/campaign cell passes through: the PfSpec —
    // and with it the canonical cell text, the baseline cache key and
    // the campaign cache address — only ever sees the one canonical
    // spelling, so "gaze:n=1:region=2048" and "gaze:region=2048:n=1"
    // are the same cell.
    PfSpec pf;
    if (level == "l1")
        pf.l1 = canonicalPrefetcherSpec(spec);
    else if (level == "l2")
        pf.l2 = canonicalPrefetcherSpec(spec);
    else
        GAZE_FATAL("unknown attach level '", level,
                   "' (want l1 or l2)");
    return pf;
}

BaselineCache::BaselineCache(size_t capacity) : cap(capacity) {}

RunResult
BaselineCache::getOrCompute(const std::string &key,
                            const std::function<RunResult()> &compute)
{
    std::shared_future<RunResult> fut;
    std::promise<RunResult> prom;
    bool owner = false;
    {
        std::unique_lock<std::mutex> lock(mtx);
        auto it = entries.find(key);
        if (it == entries.end()) {
            fut = prom.get_future().share();
            Entry e;
            e.fut = fut;
            entries.emplace(key, std::move(e));
            owner = true;
        } else {
            fut = it->second.fut;
            if (it->second.ready) {
                lru.erase(it->second.lruIt);
                lru.push_front(key);
                it->second.lruIt = lru.begin();
            }
        }
    }
    // Compute outside the lock so unrelated keys proceed in parallel;
    // only waiters of this key block, on the future. Both sides show
    // up on the host-time trace track: computing a baseline is real
    // work, waiting on one is contention worth seeing.
    if (owner) {
        obs::HostSpan span(obs::globalTrace(), "baseline compute");
        try {
            prom.set_value(compute());
        } catch (...) {
            prom.set_exception(std::current_exception());
        }
        std::unique_lock<std::mutex> lock(mtx);
        auto it = entries.find(key);
        // In-flight entries are never on the LRU list, so nothing can
        // have evicted ours while we computed.
        GAZE_ASSERT(it != entries.end() && !it->second.ready,
                    "baseline entry vanished while in flight");
        it->second.ready = true;
        lru.push_front(key);
        it->second.lruIt = lru.begin();
        evictLocked();
    } else {
        obs::HostSpan span(obs::globalTrace(), "baseline wait");
        fut.wait();
    }
    // By value: our shared_future copy keeps the shared state alive
    // even if the map entry was evicted the moment it became ready.
    return fut.get();
}

void
BaselineCache::evictLocked()
{
    // Only completed entries are evictable; failed computes count as
    // completed too (their memoized exception ages out like any other
    // result, after which the key recomputes fresh).
    while (cap != 0 && lru.size() > cap) {
        entries.erase(lru.back());
        lru.pop_back();
        ++evicted;
    }
}

size_t
BaselineCache::size() const
{
    std::unique_lock<std::mutex> lock(mtx);
    return entries.size();
}

uint64_t
BaselineCache::evictions() const
{
    std::unique_lock<std::mutex> lock(mtx);
    return evicted;
}

uint64_t
RunConfig::effectiveWarmup() const
{
    return warmupInstr ? warmupInstr : scaledRecords(200'000);
}

uint64_t
RunConfig::effectiveSim() const
{
    return simInstr ? simInstr : scaledRecords(400'000);
}

Runner::Runner(const RunConfig &config,
               std::shared_ptr<BaselineCache> baselines_)
    : cfg(config), baselines(std::move(baselines_))
{
    if (!baselines)
        baselines = std::make_shared<BaselineCache>();
}

RunResult
Runner::execute(const std::vector<WorkloadDef> &mix, const PfSpec &pf)
{
    SystemConfig sys_cfg = cfg.system;
    sys_cfg.numCores = static_cast<uint32_t>(mix.size());
    System sys(sys_cfg);

    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.reserve(mix.size());
    for (const auto &w : mix)
        traces.push_back(w.open());
    for (uint32_t c = 0; c < sys.numCores(); ++c)
        sys.setTrace(c, traces[c].get());

    for (uint32_t c = 0; c < sys.numCores(); ++c) {
        sys.setL1Prefetcher(c, makePrefetcher(pf.l1));
        sys.setL2Prefetcher(c, makePrefetcher(pf.l2));
    }

    // Observability attachments. The registry binds pointers at live
    // counter fields (zero hot-path indirection); the sampler only
    // joins after warmup + resetStats so its rows cover measured time.
    // When GAZE_OBS is compiled out the engine hooks are no-ops, so
    // none of this is wired up (GAZE_OBS_ON is a compile-time 0).
    obs::Registry registry;
    std::unique_ptr<obs::IntervalSampler> sampler;
    const bool obsOn = GAZE_OBS_ON && cfg.obs.enabled();
    std::string obsLabel;
    if (obsOn) {
        std::string wl;
        for (const auto &w : mix)
            wl += (wl.empty() ? "" : "+") + w.name;
        obsLabel = pf.label() + "/" + wl;
        if (cfg.obs.samplerInterval) {
            sys.bindObsCounters(&registry);
            registry.seal();
            sampler = std::make_unique<obs::IntervalSampler>(
                &registry, cfg.obs.samplerInterval);
        }
        if (cfg.obs.trace)
            sys.setObsTrace(cfg.obs.trace, obsLabel);
    }

    WallTimer timer;
    sys.run(cfg.effectiveWarmup());
    sys.resetStats();
    if (sampler) {
        sampler->startAt(sys.cycle());
        sys.setObsSampler(sampler.get());
    }
    auto cores = sys.simulate(cfg.effectiveSim());
    if (sampler) {
        sampler->finish(sys.cycle());
        sys.setObsSampler(nullptr);
    }
    RunResult result = collectResult(sys, std::move(cores));
    result.wallSeconds = timer.seconds();
    if (sampler)
        result.obsSamples = sampler->takeSeries();
    return result;
}

RunResult
Runner::run(const WorkloadDef &w, const PfSpec &pf)
{
    return execute({w}, pf);
}

RunResult
Runner::runMix(const std::vector<WorkloadDef> &mix, const PfSpec &pf)
{
    return execute(mix, pf);
}

RunResult
Runner::baseline(const WorkloadDef &w)
{
    return baselineMix({w});
}

RunResult
Runner::baselineMix(const std::vector<WorkloadDef> &mix)
{
    // The canonical cell text keys the baseline, so Runners with
    // different configs (or differently recorded traces of the same
    // workload name) sharing one cache can never collide.
    std::string key = canonicalCellText(cfg, PfSpec{}, mix);
    return baselines->getOrCompute(key,
                                   [&] { return execute(mix, PfSpec{}); });
}

PrefetchMetrics
Runner::evaluate(const WorkloadDef &w, const PfSpec &pf)
{
    const RunResult &base = baseline(w);
    RunResult r = run(w, pf);
    return computeMetrics(base, r);
}

PrefetchMetrics
Runner::evaluateMix(const std::vector<WorkloadDef> &mix, const PfSpec &pf)
{
    const RunResult &base = baselineMix(mix);
    RunResult r = runMix(mix, pf);
    return computeMetrics(base, r);
}

SuiteSummary
evaluateSuite(Runner &runner, const std::vector<WorkloadDef> &workloads,
              const PfSpec &pf)
{
    GAZE_ASSERT(!workloads.empty(), "empty suite");
    std::vector<double> speedups;
    double acc = 0.0, cov = 0.0, late = 0.0;
    for (const auto &w : workloads) {
        PrefetchMetrics m = runner.evaluate(w, pf);
        speedups.push_back(m.speedup);
        acc += m.accuracy;
        cov += m.coverage;
        late += m.lateFraction;
    }
    SuiteSummary s;
    s.speedup = geomean(speedups);
    s.accuracy = acc / double(workloads.size());
    s.coverage = cov / double(workloads.size());
    s.lateFraction = late / double(workloads.size());
    return s;
}

} // namespace gaze
