#include "harness/metrics.hh"

#include <cmath>

#include "common/log.hh"

namespace gaze
{

double
RunResult::ipc() const
{
    if (cores.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &c : cores)
        sum += c.ipc();
    return sum / double(cores.size());
}

namespace
{

void
accumulate(CacheStats &into, const CacheStats &from)
{
    into.loadAccess += from.loadAccess;
    into.loadHit += from.loadHit;
    into.loadMiss += from.loadMiss;
    into.rfoAccess += from.rfoAccess;
    into.rfoHit += from.rfoHit;
    into.rfoMiss += from.rfoMiss;
    into.loadMissLate += from.loadMissLate;
    into.rfoMissLate += from.rfoMissLate;
    into.wbAccess += from.wbAccess;
    into.wbHit += from.wbHit;
    into.wbMiss += from.wbMiss;
    into.pfIssued += from.pfIssued;
    into.pfDroppedFull += from.pfDroppedFull;
    into.pfDroppedDup += from.pfDroppedDup;
    into.pfDroppedHit += from.pfDroppedHit;
    into.pfDroppedMshr += from.pfDroppedMshr;
    into.pfMshrWait += from.pfMshrWait;
    into.pfDemoted += from.pfDemoted;
    into.pfFilled += from.pfFilled;
    into.pfUseful += from.pfUseful;
    into.pfUseless += from.pfUseless;
    into.pfLate += from.pfLate;
    into.mshrMerge += from.mshrMerge;
    into.mshrFullStall += from.mshrFullStall;
    into.writebacksSent += from.writebacksSent;
    into.demandMissLatencySum += from.demandMissLatencySum;
    into.demandMissLatencyCnt += from.demandMissLatencyCnt;
}

} // namespace

RunResult
collectResult(System &sys, std::vector<CoreResult> cores)
{
    RunResult r;
    r.cores = std::move(cores);
    for (uint32_t c = 0; c < sys.numCores(); ++c) {
        accumulate(r.l1d, sys.l1d(c).stats());
        accumulate(r.l2, sys.l2(c).stats());
    }
    r.llc = sys.llc().stats();
    r.dram = sys.dram().stats();
    r.engine = sys.engineStats();
    for (uint32_t c = 0; c < sys.numCores(); ++c)
        r.instructionsRetired += sys.core(c).retired();

    // Per-scheme attribution, summed over L1D + L2 across cores (the
    // same levels the aggregate pf counters are summed over). Scheme
    // ids are 1-based indices into schemeNames(); the per-cache tables
    // grow lazily, so guard every index.
    const auto &names = sys.schemeNames();
    r.schemes.resize(names.size());
    for (size_t i = 0; i < names.size(); ++i)
        r.schemes[i].name = names[i];
    auto fold = [&](const std::vector<SchemeStats> &table) {
        for (size_t id = 1; id < table.size(); ++id) {
            if (id - 1 >= r.schemes.size())
                continue;
            auto &dst = r.schemes[id - 1];
            const auto &src = table[id];
            dst.issued += src.issued;
            dst.filled += src.filled;
            dst.useful += src.useful;
            dst.late += src.late;
            dst.useless += src.useless;
            dst.fillToUseSum += src.fillToUseSum;
            dst.fillToUseCnt += src.fillToUseCnt;
        }
    };
    for (uint32_t c = 0; c < sys.numCores(); ++c) {
        fold(sys.l1d(c).schemeStats());
        fold(sys.l2(c).schemeStats());
    }
    return r;
}

RunSummary
summarize(const RunResult &r)
{
    RunSummary s;
    s.ipc = r.ipc();
    s.pfIssued = r.l1d.pfIssued + r.l2.pfIssued;
    s.pfFilled = r.l1d.pfFilled + r.l2.pfFilled;
    s.pfUseful = r.l1d.pfUseful + r.l2.pfUseful;
    s.pfLate = r.l1d.pfLate + r.l2.pfLate;
    s.pfLateLoad = r.l1d.loadMissLate + r.l2.loadMissLate;
    s.pfLateRfo = r.l1d.rfoMissLate + r.l2.rfoMissLate;
    s.llcDemandMiss = r.llc.demandMiss();
    s.schemes = r.schemes;
    s.eventsDispatched = r.engine.eventsDispatched;
    s.cyclesExecuted = r.engine.cyclesExecuted;
    s.cyclesSkipped = r.engine.cyclesSkipped;
    s.minstrPerSec = r.minstrPerSec();
    return s;
}

PrefetchMetrics
computeMetrics(const RunSummary &base, const RunSummary &with_pf)
{
    PrefetchMetrics m;

    m.speedup = base.ipc > 0.0 ? with_pf.ipc / base.ipc : 1.0;

    // Overall accuracy over prefetch fills at L1D and L2C: useful
    // counts both demand-hit-after-fill and late (demand merged while
    // in flight), since late prefetches still hid most of the miss.
    m.pfFilled = with_pf.pfFilled;
    m.pfUseful = with_pf.pfUseful;
    m.pfLate = with_pf.pfLate;
    m.pfIssued = with_pf.pfIssued;
    uint64_t denom = with_pf.pfFilled + with_pf.pfLate;
    m.accuracy =
        denom ? double(with_pf.pfUseful + with_pf.pfLate) / denom : 0.0;
    if (m.accuracy > 1.0)
        m.accuracy = 1.0;

    // LLC coverage: removed fraction of baseline LLC demand misses.
    m.llcMissBase = base.llcDemandMiss;
    m.llcMissPf = with_pf.llcDemandMiss;
    if (m.llcMissBase > 0) {
        double removed = double(m.llcMissBase)
                         - double(std::min(m.llcMissPf, m.llcMissBase));
        m.coverage = removed / double(m.llcMissBase);
    }

    uint64_t useful_all = with_pf.pfUseful + with_pf.pfLate;
    m.lateFraction =
        useful_all ? double(with_pf.pfLate) / useful_all : 0.0;
    m.pfLateLoad = with_pf.pfLateLoad;
    m.pfLateRfo = with_pf.pfLateRfo;

    // Per-scheme breakdown: the same metric definitions as above,
    // restricted to blocks one scheme issued. Per-scheme coverage is
    // the scheme's useful fills over the *baseline* LLC misses — an
    // upper-bound share, since schemes can overlap.
    m.schemes.reserve(with_pf.schemes.size());
    for (const auto &s : with_pf.schemes) {
        SchemeMetrics sm;
        sm.name = s.name;
        sm.issued = s.issued;
        sm.filled = s.filled;
        sm.useful = s.useful;
        sm.late = s.late;
        sm.useless = s.useless;
        uint64_t sd = s.filled + s.late;
        sm.accuracy = sd ? double(s.useful + s.late) / sd : 0.0;
        if (sm.accuracy > 1.0)
            sm.accuracy = 1.0;
        if (base.llcDemandMiss > 0) {
            sm.coverage = double(std::min(s.useful, base.llcDemandMiss))
                          / double(base.llcDemandMiss);
        }
        sm.pollution = s.filled ? double(s.useless) / s.filled : 0.0;
        uint64_t su = s.useful + s.late;
        sm.lateFraction = su ? double(s.late) / su : 0.0;
        sm.avgFillToUse = s.fillToUseCnt
                              ? double(s.fillToUseSum) / s.fillToUseCnt
                              : 0.0;
        m.schemes.push_back(std::move(sm));
    }
    return m;
}

PrefetchMetrics
computeMetrics(const RunResult &base, const RunResult &with_pf)
{
    return computeMetrics(summarize(base), summarize(with_pf));
}

double
geomean(const std::vector<double> &values)
{
    GAZE_ASSERT(!values.empty(), "geomean of nothing");
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v > 1e-9 ? v : 1e-9);
    return std::exp(log_sum / double(values.size()));
}

} // namespace gaze
