#include "campaign/json.hh"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace gaze
{

bool
JsonValue::asBool() const
{
    GAZE_ASSERT(ty == Type::Bool, "JSON value is not a boolean");
    return boolean;
}

double
JsonValue::asNumber() const
{
    GAZE_ASSERT(ty == Type::Number, "JSON value is not a number");
    return number;
}

const std::string &
JsonValue::asString() const
{
    GAZE_ASSERT(ty == Type::String, "JSON value is not a string");
    return text;
}

uint64_t
JsonValue::asCount(const char *what, uint64_t max) const
{
    if (ty != Type::Number)
        GAZE_FATAL(what, " must be a number");
    double v = number;
    if (!(v >= 0) || v != std::floor(v) || v > 9.007199254740992e15)
        GAZE_FATAL(what, " must be a non-negative integer, got ", v);
    uint64_t n = static_cast<uint64_t>(v);
    if (n > max)
        GAZE_FATAL(what, " out of range: ", n, " (max ", max, ")");
    return n;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    GAZE_ASSERT(ty == Type::Array, "JSON value is not an array");
    return array;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    GAZE_ASSERT(ty == Type::Object, "JSON value is not an object");
    return object;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    GAZE_ASSERT(ty == Type::Object, "JSON value is not an object");
    for (const auto &m : object)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool v)
{
    JsonValue j;
    j.ty = Type::Bool;
    j.boolean = v;
    return j;
}

JsonValue
JsonValue::makeNumber(double v)
{
    JsonValue j;
    j.ty = Type::Number;
    j.number = v;
    return j;
}

JsonValue
JsonValue::makeString(std::string v)
{
    JsonValue j;
    j.ty = Type::String;
    j.text = std::move(v);
    return j;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> v)
{
    JsonValue j;
    j.ty = Type::Array;
    j.array = std::move(v);
    return j;
}

JsonValue
JsonValue::makeObject(std::vector<std::pair<std::string, JsonValue>> v)
{
    JsonValue j;
    j.ty = Type::Object;
    j.object = std::move(v);
    return j;
}

namespace
{

/** Recursive-descent parser over one in-memory document. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : s(text), err(error)
    {
    }

    bool
    parseDocument(JsonValue *out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos != s.size())
            return fail("trailing garbage after document");
        return true;
    }

  private:
    /** Nesting bound: malformed input must not smash the stack. */
    static constexpr int kMaxDepth = 64;

    bool
    fail(const std::string &why)
    {
        *err = why + " (at byte " + std::to_string(pos) + ")";
        return false;
    }

    void
    skipWs()
    {
        while (pos < s.size()
               && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n'
                   || s[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word, size_t len)
    {
        if (s.compare(pos, len, word) != 0)
            return fail(std::string("invalid literal (expected ") + word
                        + ")");
        pos += len;
        return true;
    }

    bool
    parseValue(JsonValue *out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("document nested too deeply");
        if (pos >= s.size())
            return fail("unexpected end of document");
        switch (s[pos]) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"': {
            std::string str;
            if (!parseString(&str))
                return false;
            *out = JsonValue::makeString(std::move(str));
            return true;
          }
          case 't':
            if (!literal("true", 4))
                return false;
            *out = JsonValue::makeBool(true);
            return true;
          case 'f':
            if (!literal("false", 5))
                return false;
            *out = JsonValue::makeBool(false);
            return true;
          case 'n':
            if (!literal("null", 4))
                return false;
            *out = JsonValue::makeNull();
            return true;
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue *out, int depth)
    {
        ++pos; // '{'
        std::vector<std::pair<std::string, JsonValue>> members;
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            *out = JsonValue::makeObject(std::move(members));
            return true;
        }
        for (;;) {
            skipWs();
            if (pos >= s.size() || s[pos] != '"')
                return fail("expected object key string");
            std::string key;
            if (!parseString(&key))
                return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return fail("expected ':' after object key");
            ++pos;
            skipWs();
            JsonValue value;
            if (!parseValue(&value, depth + 1))
                return false;
            members.emplace_back(std::move(key), std::move(value));
            skipWs();
            if (pos >= s.size())
                return fail("unterminated object");
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == '}') {
                ++pos;
                *out = JsonValue::makeObject(std::move(members));
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue *out, int depth)
    {
        ++pos; // '['
        std::vector<JsonValue> items;
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            *out = JsonValue::makeArray(std::move(items));
            return true;
        }
        for (;;) {
            skipWs();
            JsonValue value;
            if (!parseValue(&value, depth + 1))
                return false;
            items.push_back(std::move(value));
            skipWs();
            if (pos >= s.size())
                return fail("unterminated array");
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == ']') {
                ++pos;
                *out = JsonValue::makeArray(std::move(items));
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string *out)
    {
        ++pos; // opening quote
        std::string str;
        while (pos < s.size()) {
            unsigned char c = static_cast<unsigned char>(s[pos]);
            if (c == '"') {
                ++pos;
                *out = std::move(str);
                return true;
            }
            if (c < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                str += static_cast<char>(c);
                ++pos;
                continue;
            }
            ++pos;
            if (pos >= s.size())
                return fail("unterminated string escape");
            switch (s[pos]) {
              case '"': str += '"'; break;
              case '\\': str += '\\'; break;
              case '/': str += '/'; break;
              case 'b': str += '\b'; break;
              case 'f': str += '\f'; break;
              case 'n': str += '\n'; break;
              case 'r': str += '\r'; break;
              case 't': str += '\t'; break;
              case 'u': {
                uint32_t cp = 0;
                if (!parseHex4(&cp))
                    return false;
                if (cp >= 0xD800 && cp <= 0xDFFF)
                    return fail("surrogate \\u escapes are not "
                                "supported");
                appendUtf8(str, cp);
                break;
              }
              default:
                return fail("unknown string escape");
            }
            ++pos;
        }
        return fail("unterminated string");
    }

    bool
    parseHex4(uint32_t *out)
    {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos + 1 >= s.size())
                return fail("truncated \\u escape");
            char c = s[++pos];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= uint32_t(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= uint32_t(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= uint32_t(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        *out = v;
        return true;
    }

    static void
    appendUtf8(std::string &str, uint32_t cp)
    {
        if (cp < 0x80) {
            str += static_cast<char>(cp);
        } else if (cp < 0x800) {
            str += static_cast<char>(0xC0 | (cp >> 6));
            str += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            str += static_cast<char>(0xE0 | (cp >> 12));
            str += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            str += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    parseNumber(JsonValue *out)
    {
        size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        size_t digits = 0;
        while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
            ++pos;
            ++digits;
        }
        if (!digits)
            return fail("invalid value");
        if (pos < s.size() && s[pos] == '.') {
            ++pos;
            digits = 0;
            while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
                ++pos;
                ++digits;
            }
            if (!digits)
                return fail("digits required after decimal point");
        }
        if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
            ++pos;
            if (pos < s.size() && (s[pos] == '+' || s[pos] == '-'))
                ++pos;
            digits = 0;
            while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
                ++pos;
                ++digits;
            }
            if (!digits)
                return fail("digits required in exponent");
        }
        std::string token = s.substr(start, pos - start);
        double v = std::strtod(token.c_str(), nullptr);
        if (!std::isfinite(v))
            return fail("number out of range");
        *out = JsonValue::makeNumber(v);
        return true;
    }

    const std::string &s;
    std::string *err;
    size_t pos = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue *out, std::string *error)
{
    std::string local;
    Parser p(text, error ? error : &local);
    return p.parseDocument(out);
}

JsonValue
parseJsonFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        GAZE_FATAL("cannot open '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof())
        GAZE_FATAL("read failed on '", path, "'");

    JsonValue doc;
    std::string error;
    if (!parseJson(buf.str(), &doc, &error))
        GAZE_FATAL(path, ": ", error);
    return doc;
}

} // namespace gaze
