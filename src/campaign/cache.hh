/**
 * @file
 * Content-addressed on-disk result cache for campaign cells. Each
 * finished simulation (prefetcher cell or no-prefetch baseline) is
 * one small JSON file named by the 16-hex-digit FNV-1a hash of its
 * canonical cell text (harness/cell_key), holding the RunSummary the
 * metric math needs plus the full text for collision detection and
 * auditability.
 *
 * Writes are atomic (write to a pid-suffixed temp file, then rename),
 * so a killed campaign never leaves a half-written cell: on resume
 * the cell misses and is simply recomputed. Lookups verify both the
 * schema version and the stored canonical text, so a hash collision
 * or a stale-schema file reads as a miss, never as a wrong result.
 */

#pragma once

#include <cstdint>
#include <string>

#include "harness/metrics.hh"

namespace gaze
{

/** One cached simulation outcome. */
struct CellRecord
{
    std::string key; ///< canonical cell text (must match on lookup)
    RunSummary summary;
    double seconds = 0.0; ///< wall time of the sim that produced it
};

/** A directory of content-addressed CellRecord files. */
class ResultCache
{
  public:
    /** Creates @p dir (and parents) if needed; fatal if impossible. */
    explicit ResultCache(std::string dir);

    /** The cell file for @p hash: "<dir>/<16 hex>.json". */
    std::string path(uint64_t hash) const;

    /**
     * Load the cell for (@p hash, @p key). Returns false when the
     * file is absent, unparseable, schema-stale, or stores a
     * different canonical text (all of which mean "recompute"); a
     * non-null @p why receives the reason for everything but a plain
     * miss.
     */
    bool lookup(uint64_t hash, const std::string &key, CellRecord *out,
                std::string *why = nullptr) const;

    /** Atomically persist @p rec under @p hash (write-then-rename). */
    void store(uint64_t hash, const CellRecord &rec) const;

    const std::string &directory() const { return dir; }

  private:
    std::string dir;
};

} // namespace gaze
