/**
 * @file
 * Campaign execution: take an expanded Campaign, skip every cell and
 * baseline whose result is already in the ResultCache, and run the
 * rest on the driver thread pool — optionally only this process's
 * shard of them (--shard=i/n assigns jobs round-robin over the
 * deterministic job order, so n processes partition the work with no
 * coordination beyond the shared cache directory).
 *
 * Execution is resumable by construction: every finished simulation
 * is atomically published to the cache before the run counts it, so
 * killing a campaign at any point loses at most the in-flight cells,
 * and rerunning the same spec recomputes only what is missing.
 */

#pragma once

#include <cstdint>
#include <string>

#include "campaign/cache.hh"
#include "campaign/spec.hh"

namespace gaze
{

/** Execution knobs for one campaign run. */
struct CampaignRunOptions
{
    /** Round-robin shard this process executes (index < count). */
    uint32_t shardIndex = 0;
    uint32_t shardCount = 1;

    /** Worker threads; 0 = hardware concurrency. */
    uint32_t threads = 0;

    /** Per-job progress lines on stderr. */
    bool verbose = true;
};

/** What one run did (the cache-hit accounting the tests assert on). */
struct CampaignRunStats
{
    uint64_t executed = 0;    ///< simulations actually run
    uint64_t cacheHits = 0;   ///< jobs served from the cache
    uint64_t otherShards = 0; ///< jobs left to sibling shards
    double seconds = 0.0;     ///< wall time of this run
    uint32_t threadsUsed = 0;

    uint64_t total() const { return executed + cacheHits + otherShards; }
};

/**
 * Execute the campaign's missing cells + baselines into @p cache.
 * Fatal on invalid shard options; I/O failures inside workers are
 * fatal (a campaign with an unwritable cache cannot make progress).
 */
CampaignRunStats runCampaign(const Campaign &campaign,
                             ResultCache &cache,
                             const CampaignRunOptions &opt);

} // namespace gaze
