/**
 * @file
 * Campaign execution: take an expanded Campaign, skip every cell and
 * baseline whose result is already in the ResultCache, and run the
 * rest on the driver thread pool — optionally only this process's
 * shard of them (--shard=i/n assigns jobs round-robin over the
 * deterministic job order, so n processes partition the work with no
 * coordination beyond the shared cache directory).
 *
 * Execution is resumable by construction: every finished simulation
 * is atomically published to the cache before the run counts it, so
 * killing a campaign at any point loses at most the in-flight cells,
 * and rerunning the same spec recomputes only what is missing.
 *
 * The building blocks are public: expandCampaignJobs() yields the
 * deterministic deduplicated job list and executeCampaignJob() runs a
 * single job, so callers that need incremental per-cell execution
 * (gaze_serve's scheduler) compose them directly instead of going
 * through run-to-completion runCampaign().
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "campaign/cache.hh"
#include "campaign/spec.hh"

namespace gaze
{

class BaselineCache;

/** One executable unit of a campaign: a baseline or a prefetcher cell. */
struct CampaignJob
{
    std::string label; ///< progress text, e.g. "gaze x mcf (1c, l1)"
    std::string key;   ///< canonical cell text (cache identity)
    uint64_t hash = 0; ///< cellHash(key) — the cache address
    uint32_t cores = 1;
    bool isBaseline = false;
    WorkloadDef workload;
    PfSpec pf;
};

/**
 * The deterministic job order of @p campaign — baselines first (they
 * are the jobs every comparison needs), then cells in expansion order,
 * each hash at most once (a spec that lists the same workload or core
 * count twice expands to duplicate cells; running both would race on
 * one cache file). Shards and the serve scheduler both derive their
 * assignment from this sequence, so the dedup happens here, before any
 * partitioning.
 */
std::vector<CampaignJob> expandCampaignJobs(const Campaign &campaign);

/**
 * Simulate one job to completion and return its cell record (the
 * caller publishes it to a ResultCache). Emits the per-cell host-time
 * span on the calling thread's track. Pass a shared @p baselines cache
 * to deduplicate baseline simulations across concurrent jobs.
 */
CellRecord executeCampaignJob(const RunConfig &run,
                              const CampaignJob &job,
                              const std::shared_ptr<BaselineCache>
                                  &baselines = nullptr);

/** Execution knobs for one campaign run. */
struct CampaignRunOptions
{
    /** Round-robin shard this process executes (index < count). */
    uint32_t shardIndex = 0;
    uint32_t shardCount = 1;

    /** Worker threads; 0 = hardware concurrency. */
    uint32_t threads = 0;

    /** Per-job progress lines on stderr. */
    bool verbose = true;

    /**
     * Completion callback, invoked on the worker thread after each
     * executed job has been published to the cache (cache hits and
     * other shards' jobs do not call back). Must be thread safe.
     */
    std::function<void(const CampaignJob &, const CellRecord &)> onCell;
};

/** What one run did (the cache-hit accounting the tests assert on). */
struct CampaignRunStats
{
    uint64_t executed = 0;    ///< simulations actually run
    uint64_t cacheHits = 0;   ///< jobs served from the cache
    uint64_t otherShards = 0; ///< jobs left to sibling shards
    double seconds = 0.0;     ///< wall time of this run
    uint32_t threadsUsed = 0;

    uint64_t total() const { return executed + cacheHits + otherShards; }
};

/**
 * Execute the campaign's missing cells + baselines into @p cache.
 * Fatal on invalid shard options; I/O failures inside workers are
 * fatal (a campaign with an unwritable cache cannot make progress).
 */
CampaignRunStats runCampaign(const Campaign &campaign,
                             ResultCache &cache,
                             const CampaignRunOptions &opt);

} // namespace gaze
