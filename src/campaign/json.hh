/**
 * @file
 * Minimal JSON reader for the campaign engine: campaign spec files,
 * cached cell records, and previous BENCH reports (--compare) are all
 * parsed through this. It is the read-side counterpart of
 * harness/export.hh's JsonWriter and understands exactly what that
 * writer emits (objects, arrays, strings with \uXXXX escapes, finite
 * numbers, booleans, null) plus arbitrary standard JSON.
 *
 * Parsing is non-fatal (returns false + a position-annotated reason)
 * so callers can turn a malformed file into a diagnostic naming the
 * file, and so the error paths are unit-testable.
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gaze
{

/** One parsed JSON value; a tree of these is one document. */
class JsonValue
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type() const { return ty; }
    bool isNull() const { return ty == Type::Null; }
    bool isBool() const { return ty == Type::Bool; }
    bool isNumber() const { return ty == Type::Number; }
    bool isString() const { return ty == Type::String; }
    bool isArray() const { return ty == Type::Array; }
    bool isObject() const { return ty == Type::Object; }

    /** Typed accessors; fatal (assertion) on a type mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /**
     * asNumber() checked to be a non-negative integer <= @p max;
     * fatal with @p what in the message otherwise (spec fields like
     * "warmup" must never silently truncate).
     */
    uint64_t asCount(const char *what, uint64_t max = UINT64_MAX) const;

    /** Array elements (fatal if not an array). */
    const std::vector<JsonValue> &items() const;

    /** Object members in source order (fatal if not an object). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;

    /** Object member lookup; nullptr when absent (fatal if not object). */
    const JsonValue *find(const std::string &key) const;

    // Construction is the parser's business, but kept public so tests
    // and spec code can build values directly.
    static JsonValue makeNull();
    static JsonValue makeBool(bool v);
    static JsonValue makeNumber(double v);
    static JsonValue makeString(std::string v);
    static JsonValue makeArray(std::vector<JsonValue> v);
    static JsonValue
    makeObject(std::vector<std::pair<std::string, JsonValue>> v);

  private:
    Type ty = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;
};

/**
 * Parse one complete JSON document (trailing garbage is an error).
 * Returns false with a byte-offset-annotated reason in @p error.
 */
bool parseJson(const std::string &text, JsonValue *out,
               std::string *error);

/**
 * Read and parse a whole file; fatal on I/O or parse errors, naming
 * @p path — config files that do not parse must never be "defaulted".
 */
JsonValue parseJsonFile(const std::string &path);

} // namespace gaze
