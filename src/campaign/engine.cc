#include "campaign/engine.hh"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <set>

#include "common/log.hh"
#include "driver/thread_pool.hh"
#include "harness/runner.hh"
#include "harness/wallclock.hh"
#include "obs/trace.hh"

namespace gaze
{

std::vector<CampaignJob>
expandCampaignJobs(const Campaign &campaign)
{
    std::set<uint64_t> queued;
    std::vector<CampaignJob> jobs;
    jobs.reserve(campaign.baselines.size() + campaign.cells.size());
    for (const auto &b : campaign.baselines) {
        CampaignJob job;
        job.label = "baseline x " + b.workload.name + " ("
                    + std::to_string(b.cores) + "c)";
        job.key = b.key;
        job.hash = b.hash;
        job.cores = b.cores;
        job.isBaseline = true;
        job.workload = b.workload;
        queued.insert(b.hash);
        jobs.push_back(std::move(job));
    }
    for (const auto &cell : campaign.cells) {
        if (!queued.insert(cell.hash).second)
            continue;
        CampaignJob job;
        job.label = cell.pf.label() + " x " + cell.workload.name + " ("
                    + std::to_string(cell.cores) + "c, " + cell.level
                    + ")";
        job.key = cell.key;
        job.hash = cell.hash;
        job.cores = cell.cores;
        job.workload = cell.workload;
        job.pf = cell.pf;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

CellRecord
executeCampaignJob(const RunConfig &run, const CampaignJob &job,
                   const std::shared_ptr<BaselineCache> &baselines)
{
    obs::HostSpan cellSpan(obs::globalTrace(), "cell " + job.label);
    WallTimer cellTimer;
    Runner runner(run, baselines);
    std::vector<WorkloadDef> mix(job.cores, job.workload);
    RunResult r = runner.runMix(mix, job.pf);

    CellRecord rec;
    rec.key = job.key;
    rec.summary = summarize(r);
    rec.seconds = cellTimer.seconds();
    return rec;
}

CampaignRunStats
runCampaign(const Campaign &campaign, ResultCache &cache,
            const CampaignRunOptions &opt)
{
    GAZE_ASSERT(opt.shardCount >= 1, "shard count must be >= 1");
    if (opt.shardIndex >= opt.shardCount)
        GAZE_FATAL("shard index ", opt.shardIndex,
                   " out of range (", opt.shardCount, " shards)");

    WallTimer campaignTimer;

    // Deterministic deduplicated job order (see expandCampaignJobs):
    // shards partition this sequence round-robin, so every process
    // derives the identical assignment from the spec alone.
    std::vector<CampaignJob> jobs = expandCampaignJobs(campaign);

    CampaignRunStats stats;
    std::vector<const CampaignJob *> toRun;
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (uint64_t(i) % opt.shardCount != opt.shardIndex) {
            ++stats.otherShards;
            continue;
        }
        CellRecord cached;
        std::string why;
        if (cache.lookup(jobs[i].hash, jobs[i].key, &cached, &why)) {
            ++stats.cacheHits;
            continue;
        }
        if (!why.empty())
            GAZE_WARN(why);
        toRun.push_back(&jobs[i]);
    }

    std::atomic<uint64_t> executed{0};
    std::mutex progressMtx;
    size_t announced = 0;
    auto progress = [&](const CampaignJob &job, double secs) {
        if (!opt.verbose)
            return;
        std::unique_lock<std::mutex> lock(progressMtx);
        ++announced;
        std::fprintf(stderr, "[%zu/%zu] %s (%.1fs)\n", announced,
                     toRun.size(), job.label.c_str(), secs);
    };

    stats.threadsUsed = resolvePoolThreads(opt.threads, toRun.size());
    if (!toRun.empty()) {
        // Host-time tracing (--obs-trace): one span for the whole
        // shard, one per cell job on its worker thread's track.
        obs::HostSpan shardSpan(obs::globalTrace(), "campaign shard");
        ThreadPool pool(stats.threadsUsed);
        for (const CampaignJob *job : toRun) {
            pool.submit([&, job] {
                CellRecord rec =
                    executeCampaignJob(campaign.spec.run, *job);
                cache.store(job->hash, rec);
                executed.fetch_add(1, std::memory_order_relaxed);
                progress(*job, rec.seconds);
                if (opt.onCell)
                    opt.onCell(*job, rec);
            });
        }
        pool.wait();
    }
    stats.executed = executed.load();

    stats.seconds = campaignTimer.seconds();
    return stats;
}

} // namespace gaze
