#include "campaign/spec.hh"

#include <set>

#include "common/log.hh"
#include "harness/cell_key.hh"
#include "prefetchers/registry.hh"

namespace gaze
{
namespace
{

std::vector<std::string>
stringArray(const JsonValue &v, const char *what)
{
    if (!v.isArray())
        GAZE_FATAL("campaign spec: \"", what,
                   "\" must be an array of strings");
    std::vector<std::string> out;
    for (const auto &item : v.items()) {
        if (!item.isString())
            GAZE_FATAL("campaign spec: \"", what,
                       "\" must contain only strings");
        out.push_back(item.asString());
    }
    if (out.empty())
        GAZE_FATAL("campaign spec: \"", what, "\" must not be empty");
    return out;
}

} // namespace

CampaignSpec
parseCampaignSpec(const JsonValue &root)
{
    if (!root.isObject())
        GAZE_FATAL("campaign spec: document must be a JSON object");

    CampaignSpec spec;
    for (const auto &member : root.members()) {
        const std::string &key = member.first;
        const JsonValue &v = member.second;
        if (key == "name") {
            if (!v.isString() || v.asString().empty())
                GAZE_FATAL("campaign spec: \"name\" must be a "
                           "non-empty string");
            spec.name = v.asString();
        } else if (key == "prefetchers") {
            spec.prefetchers = stringArray(v, "prefetchers");
        } else if (key == "suites") {
            spec.suites = stringArray(v, "suites");
        } else if (key == "workloads") {
            spec.workloadNames = stringArray(v, "workloads");
        } else if (key == "levels") {
            spec.levels = stringArray(v, "levels");
        } else if (key == "cores") {
            if (!v.isArray() || v.items().empty())
                GAZE_FATAL("campaign spec: \"cores\" must be a "
                           "non-empty array of core counts");
            spec.coreCounts.clear();
            for (const auto &item : v.items()) {
                uint64_t n = item.asCount("campaign spec: cores entry",
                                          256);
                if (n < 1)
                    GAZE_FATAL("campaign spec: cores entry must be "
                               ">= 1");
                spec.coreCounts.push_back(
                    static_cast<uint32_t>(n));
            }
        } else if (key == "warmup") {
            spec.run.warmupInstr =
                v.asCount("campaign spec: warmup");
        } else if (key == "sim") {
            spec.run.simInstr = v.asCount("campaign spec: sim");
        } else if (key == "trace_dir") {
            if (!v.isString() || v.asString().empty())
                GAZE_FATAL("campaign spec: \"trace_dir\" must be a "
                           "non-empty string");
            spec.traceDir = v.asString();
        } else {
            GAZE_FATAL("campaign spec: unknown key \"", key,
                       "\" (typo?)");
        }
    }

    if (spec.name.empty())
        GAZE_FATAL("campaign spec: missing required \"name\"");
    if (spec.prefetchers.empty())
        GAZE_FATAL("campaign spec: missing required \"prefetchers\"");

    // Resolve every axis entry against its registry now, so a typo
    // dies with a clear message before any simulation or cache I/O —
    // including suites that "workloads" overrides and would otherwise
    // be silently ignored.
    //
    // The prefetcher axis is also canonicalized (aliases resolved,
    // options sorted, defaults elided): equivalent spellings collapse
    // to one axis entry, one set of cells and one cache address, and
    // the report labels are spelling-invariant. First spelling wins
    // the axis position.
    spec.prefetchers =
        canonicalizeSpecList(spec.prefetchers, "campaign spec");
    for (const auto &level : spec.levels)
        pfSpecAt("none", level);
    for (const auto &w : spec.workloadNames)
        findWorkload(w);
    for (const auto &s : spec.suites)
        suiteWorkloads(s);
    return spec;
}

Campaign
expandCampaign(const CampaignSpec &spec)
{
    Campaign c;
    c.spec = spec;

    if (!spec.workloadNames.empty()) {
        for (const auto &n : spec.workloadNames)
            c.workloads.push_back(findWorkload(n));
    } else {
        std::vector<std::string> suites = spec.suites;
        if (suites.empty())
            suites = mainSuites();
        for (const auto &s : suites)
            for (const auto &w : suiteWorkloads(s))
                c.workloads.push_back(w);
    }
    if (!spec.traceDir.empty())
        c.workloads = withTraceDir(std::move(c.workloads),
                                   spec.traceDir);

    // Deterministic cell order: level, cores, prefetcher, workload.
    // The baseline of a cell depends only on (cores, workload), so the
    // level and prefetcher axes all share it; first appearance wins.
    std::set<uint64_t> baselineSeen;
    for (const auto &level : spec.levels) {
        for (uint32_t cores : spec.coreCounts) {
            for (const auto &pf_name : spec.prefetchers) {
                for (const auto &w : c.workloads) {
                    CampaignCell cell;
                    cell.prefetcher = pf_name;
                    cell.level = level;
                    cell.cores = cores;
                    cell.workload = w;
                    cell.pf = pfSpecAt(pf_name, level);

                    std::vector<WorkloadDef> mix(cores, w);
                    cell.key =
                        canonicalCellText(spec.run, cell.pf, mix);
                    cell.hash = cellHash(cell.key);

                    cell.baselineKey =
                        canonicalCellText(spec.run, PfSpec{}, mix);
                    cell.baselineHash = cellHash(cell.baselineKey);
                    if (baselineSeen.insert(cell.baselineHash).second) {
                        CampaignBaseline b;
                        b.cores = cores;
                        b.workload = w;
                        b.key = cell.baselineKey;
                        b.hash = cell.baselineHash;
                        c.baselines.push_back(std::move(b));
                    }
                    c.cells.push_back(std::move(cell));
                }
            }
        }
    }
    GAZE_ASSERT(!c.cells.empty(), "campaign expanded to zero cells");
    return c;
}

Campaign
loadCampaign(const std::string &path)
{
    return expandCampaign(parseCampaignSpec(parseJsonFile(path)));
}

} // namespace gaze
