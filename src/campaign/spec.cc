#include "campaign/spec.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <set>

#include "common/log.hh"
#include "harness/cell_key.hh"
#include "prefetchers/registry.hh"
#include "tracing/trace_io.hh"

namespace gaze
{
namespace
{

std::vector<std::string>
stringArray(const JsonValue &v, const char *what)
{
    if (!v.isArray())
        GAZE_FATAL("campaign spec: \"", what,
                   "\" must be an array of strings");
    std::vector<std::string> out;
    for (const auto &item : v.items()) {
        if (!item.isString())
            GAZE_FATAL("campaign spec: \"", what,
                       "\" must contain only strings");
        out.push_back(item.asString());
    }
    if (out.empty())
        GAZE_FATAL("campaign spec: \"", what, "\" must not be empty");
    return out;
}

} // namespace

CampaignSpec
parseCampaignSpec(const JsonValue &root)
{
    if (!root.isObject())
        GAZE_FATAL("campaign spec: document must be a JSON object");

    CampaignSpec spec;
    for (const auto &member : root.members()) {
        const std::string &key = member.first;
        const JsonValue &v = member.second;
        if (key == "name") {
            if (!v.isString() || v.asString().empty())
                GAZE_FATAL("campaign spec: \"name\" must be a "
                           "non-empty string");
            spec.name = v.asString();
        } else if (key == "prefetchers") {
            spec.prefetchers = stringArray(v, "prefetchers");
        } else if (key == "suites") {
            spec.suites = stringArray(v, "suites");
        } else if (key == "workloads") {
            spec.workloadNames = stringArray(v, "workloads");
        } else if (key == "levels") {
            spec.levels = stringArray(v, "levels");
        } else if (key == "cores") {
            if (!v.isArray() || v.items().empty())
                GAZE_FATAL("campaign spec: \"cores\" must be a "
                           "non-empty array of core counts");
            spec.coreCounts.clear();
            for (const auto &item : v.items()) {
                uint64_t n = item.asCount("campaign spec: cores entry",
                                          256);
                if (n < 1)
                    GAZE_FATAL("campaign spec: cores entry must be "
                               ">= 1");
                spec.coreCounts.push_back(
                    static_cast<uint32_t>(n));
            }
        } else if (key == "warmup") {
            spec.run.warmupInstr =
                v.asCount("campaign spec: warmup");
        } else if (key == "sim") {
            spec.run.simInstr = v.asCount("campaign spec: sim");
        } else if (key == "trace_dir") {
            if (!v.isString() || v.asString().empty())
                GAZE_FATAL("campaign spec: \"trace_dir\" must be a "
                           "non-empty string");
            spec.traceDir = v.asString();
        } else {
            GAZE_FATAL("campaign spec: unknown key \"", key,
                       "\" (typo?)");
        }
    }

    if (spec.name.empty())
        GAZE_FATAL("campaign spec: missing required \"name\"");
    if (spec.prefetchers.empty())
        GAZE_FATAL("campaign spec: missing required \"prefetchers\"");

    // Resolve every axis entry against its registry now, so a typo
    // dies with a clear message before any simulation or cache I/O —
    // including suites that "workloads" overrides and would otherwise
    // be silently ignored.
    //
    // The prefetcher axis is also canonicalized (aliases resolved,
    // options sorted, defaults elided): equivalent spellings collapse
    // to one axis entry, one set of cells and one cache address, and
    // the report labels are spelling-invariant. First spelling wins
    // the axis position.
    spec.prefetchers =
        canonicalizeSpecList(spec.prefetchers, "campaign spec");
    for (const auto &level : spec.levels)
        pfSpecAt("none", level);
    for (const auto &w : spec.workloadNames)
        findWorkload(w);
    for (const auto &s : spec.suites)
        suiteWorkloads(s);
    return spec;
}

Campaign
expandCampaign(const CampaignSpec &spec)
{
    Campaign c;
    c.spec = spec;

    if (!spec.workloadNames.empty()) {
        for (const auto &n : spec.workloadNames)
            c.workloads.push_back(findWorkload(n));
    } else {
        std::vector<std::string> suites = spec.suites;
        if (suites.empty())
            suites = mainSuites();
        for (const auto &s : suites)
            for (const auto &w : suiteWorkloads(s))
                c.workloads.push_back(w);
    }
    if (!spec.traceDir.empty())
        c.workloads = withTraceDir(std::move(c.workloads),
                                   spec.traceDir);

    // Deterministic cell order: level, cores, prefetcher, workload.
    // The baseline of a cell depends only on (cores, workload), so the
    // level and prefetcher axes all share it; first appearance wins.
    std::set<uint64_t> baselineSeen;
    for (const auto &level : spec.levels) {
        for (uint32_t cores : spec.coreCounts) {
            for (const auto &pf_name : spec.prefetchers) {
                for (const auto &w : c.workloads) {
                    CampaignCell cell;
                    cell.prefetcher = pf_name;
                    cell.level = level;
                    cell.cores = cores;
                    cell.workload = w;
                    cell.pf = pfSpecAt(pf_name, level);

                    std::vector<WorkloadDef> mix(cores, w);
                    cell.key =
                        canonicalCellText(spec.run, cell.pf, mix);
                    cell.hash = cellHash(cell.key);

                    cell.baselineKey =
                        canonicalCellText(spec.run, PfSpec{}, mix);
                    cell.baselineHash = cellHash(cell.baselineKey);
                    if (baselineSeen.insert(cell.baselineHash).second) {
                        CampaignBaseline b;
                        b.cores = cores;
                        b.workload = w;
                        b.key = cell.baselineKey;
                        b.hash = cell.baselineHash;
                        c.baselines.push_back(std::move(b));
                    }
                    c.cells.push_back(std::move(cell));
                }
            }
        }
    }
    GAZE_ASSERT(!c.cells.empty(), "campaign expanded to zero cells");
    return c;
}

Campaign
loadCampaign(const std::string &path)
{
    return expandCampaign(parseCampaignSpec(parseJsonFile(path)));
}

// ------------------------------------------- non-fatal preflight
//
// gaze_serve hands client-supplied documents to parseCampaignSpec +
// expandCampaign, which exit the process on any problem. These checks
// mirror that validation non-fatally and must stay at least as strict:
// a document that passes here must never reach a GAZE_FATAL in the
// parser or the expansion.

namespace
{

/** Mirror of registry.cc's strict Uint option parse, non-fatally. */
std::string
checkUintOption(const PrefetcherDescriptor &desc, const OptionSchema &os,
                const std::string &value)
{
    bool digitsOnly = !value.empty();
    for (char c : value)
        digitsOnly = digitsOnly && c >= '0' && c <= '9';
    errno = 0;
    char *end = nullptr;
    unsigned long long n = std::strtoull(value.c_str(), &end, 10);
    if (!digitsOnly || (end && *end != '\0') || errno == ERANGE)
        return "prefetcher '" + std::string(desc.name) + "': option '"
               + os.name + "' wants an unsigned integer, got '" + value
               + "'";
    if (n < os.min || n > os.max)
        return "prefetcher '" + std::string(desc.name) + "': option '"
               + os.name + "' out of range: " + std::to_string(n)
               + " (want " + std::to_string(os.min) + ".."
               + std::to_string(os.max) + ")";
    if (os.pow2 && n != 0 && (n & (n - 1)) != 0)
        return "prefetcher '" + std::string(desc.name) + "': option '"
               + os.name + "' must be a power of two, got "
               + std::to_string(n);
    return "";
}

std::string
checkStringArray(const JsonValue &v, const char *what,
                 std::vector<std::string> *out)
{
    if (!v.isArray())
        return std::string("\"") + what
               + "\" must be an array of strings";
    for (const auto &item : v.items()) {
        if (!item.isString())
            return std::string("\"") + what
                   + "\" must contain only strings";
        out->push_back(item.asString());
    }
    if (out->empty())
        return std::string("\"") + what + "\" must not be empty";
    return "";
}

std::string
checkCount(const JsonValue &v, const char *what, uint64_t max)
{
    if (!v.isNumber())
        return std::string(what) + " must be a number";
    double d = v.asNumber();
    if (!(d >= 0) || d != std::floor(d) || d > 9.007199254740992e15)
        return std::string(what) + " must be a non-negative integer";
    if (static_cast<uint64_t>(d) > max)
        return std::string(what) + " out of range (max "
               + std::to_string(max) + ")";
    return "";
}

} // namespace

std::string
checkPrefetcherSpecText(const std::string &text)
{
    if (text.empty() || text == "none")
        return "";

    // Token walk identical to the registry's splitSpec: the scheme
    // name up to the first ':', then ':'-separated key[=value] tokens.
    size_t pos = text.find(':');
    std::string name = text.substr(0, pos);
    const PrefetcherDescriptor *desc =
        PrefetcherRegistry::instance().find(name);
    if (!desc)
        return "unknown prefetcher '" + name + "' in spec '" + text
               + "' (see gaze_sim --list-prefetchers)";

    std::set<std::string> seen;
    while (pos != std::string::npos) {
        size_t next = text.find(':', pos + 1);
        std::string tok =
            text.substr(pos + 1, next == std::string::npos
                                     ? std::string::npos
                                     : next - pos - 1);
        pos = next;
        size_t eq = tok.find('=');
        bool hasValue = eq != std::string::npos;
        std::string key = hasValue ? tok.substr(0, eq) : tok;
        std::string value = hasValue ? tok.substr(eq + 1) : "";

        const OptionSchema *os = desc->findOption(key);
        if (!os)
            return "prefetcher '" + std::string(desc->name)
                   + "': unknown option '" + key + "' in spec '" + text
                   + "'";
        if (!seen.insert(os->name).second)
            return "prefetcher '" + std::string(desc->name)
                   + "': option '" + os->name + "' given twice in spec '"
                   + text + "'";
        switch (os->type) {
          case OptionType::Flag: {
            if (hasValue)
                return "prefetcher '" + std::string(desc->name)
                       + "': option '" + os->name
                       + "' is a flag and takes no value";
            break;
          }
          case OptionType::Uint: {
            if (!hasValue)
                return "prefetcher '" + std::string(desc->name)
                       + "': option '" + os->name + "' needs =N";
            std::string err = checkUintOption(*desc, *os, value);
            if (!err.empty())
                return err;
            break;
          }
          case OptionType::Enum: {
            if (!hasValue)
                return "prefetcher '" + std::string(desc->name)
                       + "': option '" + os->name + "' needs =VALUE";
            if (std::find(os->enumValues.begin(), os->enumValues.end(),
                          value)
                == os->enumValues.end())
                return "prefetcher '" + std::string(desc->name)
                       + "': unknown value '" + value + "' for option '"
                       + os->name + "'";
            break;
          }
        }
    }
    return "";
}

std::string
checkCampaignSpecDoc(const JsonValue &root)
{
    if (!root.isObject())
        return "campaign spec: document must be a JSON object";

    std::string name;
    std::vector<std::string> prefetchers, suites, workloadNames, levels;
    std::string traceDir;
    for (const auto &member : root.members()) {
        const std::string &key = member.first;
        const JsonValue &v = member.second;
        std::string err;
        if (key == "name") {
            if (!v.isString() || v.asString().empty())
                return "campaign spec: \"name\" must be a non-empty "
                       "string";
            name = v.asString();
        } else if (key == "prefetchers") {
            err = checkStringArray(v, "prefetchers", &prefetchers);
        } else if (key == "suites") {
            err = checkStringArray(v, "suites", &suites);
        } else if (key == "workloads") {
            err = checkStringArray(v, "workloads", &workloadNames);
        } else if (key == "levels") {
            err = checkStringArray(v, "levels", &levels);
        } else if (key == "cores") {
            if (!v.isArray() || v.items().empty())
                return "campaign spec: \"cores\" must be a non-empty "
                       "array of core counts";
            for (const auto &item : v.items()) {
                err = checkCount(item, "cores entry", 256);
                if (!err.empty())
                    return "campaign spec: " + err;
                if (item.asNumber() < 1)
                    return "campaign spec: cores entry must be >= 1";
            }
        } else if (key == "warmup" || key == "sim") {
            err = checkCount(v, key.c_str(),
                             static_cast<uint64_t>(-1));
        } else if (key == "trace_dir") {
            if (!v.isString() || v.asString().empty())
                return "campaign spec: \"trace_dir\" must be a "
                       "non-empty string";
            traceDir = v.asString();
        } else {
            return "campaign spec: unknown key \"" + key + "\" (typo?)";
        }
        if (!err.empty())
            return "campaign spec: " + err;
    }
    if (name.empty())
        return "campaign spec: missing required \"name\"";
    if (prefetchers.empty())
        return "campaign spec: missing required \"prefetchers\"";

    for (const auto &pf : prefetchers) {
        std::string err = checkPrefetcherSpecText(pf);
        if (!err.empty())
            return "campaign spec: " + err;
    }
    for (const auto &level : levels)
        if (level != "l1" && level != "l2")
            return "campaign spec: unknown attach level '" + level
                   + "' (want l1 or l2)";

    // Resolve the workload axis exactly as expandCampaign will.
    std::set<std::string> knownWorkloads, knownSuites;
    for (const auto &w : allWorkloads()) {
        knownWorkloads.insert(w.name);
        knownSuites.insert(w.suite);
    }
    knownSuites.insert("qmm"); // matches qmm_server + qmm_client
    std::vector<std::string> resolved;
    if (!workloadNames.empty()) {
        for (const auto &w : workloadNames) {
            if (!knownWorkloads.count(w))
                return "campaign spec: unknown workload '" + w + "'";
            resolved.push_back(w);
        }
        for (const auto &s : suites)
            if (!knownSuites.count(s))
                return "campaign spec: unknown suite '" + s + "'";
    } else {
        std::vector<std::string> useSuites =
            suites.empty() ? mainSuites() : suites;
        for (const auto &s : useSuites) {
            if (!knownSuites.count(s))
                return "campaign spec: unknown suite '" + s + "'";
            for (const auto &w : suiteWorkloads(s))
                resolved.push_back(w.name);
        }
    }

    if (!traceDir.empty()) {
        std::string base = traceDir;
        if (base.back() != '/')
            base += '/';
        for (const auto &w : resolved) {
            std::string path = base + traceFileName(w);
            std::string err;
            if (!probeTraceFile(path, nullptr, &err))
                return "campaign spec: workload '" + w
                       + "' has no usable trace in '" + traceDir
                       + "': " + err;
        }
    }
    return "";
}

} // namespace gaze
