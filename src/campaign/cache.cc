#include "campaign/cache.hh"

#include <atomic>
#include <filesystem>
#include <fstream>

#include "campaign/json.hh"
#include "common/log.hh"
#include "harness/cell_key.hh"
#include "harness/export.hh"

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace gaze
{
namespace
{

/**
 * Read a non-negative integer member into @p out. False on a missing
 * or non-count value — like every other defect in a cell record,
 * that must read as a miss (recompute), never abort the campaign.
 */
bool
countField(const JsonValue &obj, const char *key, uint64_t *out)
{
    const JsonValue *v = obj.find(key);
    if (!v || !v->isNumber())
        return false;
    double n = v->asNumber();
    // Reject above 2^53 before the cast: the cast itself is UB for
    // out-of-range doubles, and such values cannot round-trip anyway.
    if (!(n >= 0) || n > 9.007199254740992e15)
        return false;
    uint64_t u = static_cast<uint64_t>(n);
    if (double(u) != n)
        return false;
    *out = u;
    return true;
}

} // namespace

ResultCache::ResultCache(std::string dir_)
    : dir(std::move(dir_))
{
    GAZE_ASSERT(!dir.empty(), "result cache needs a directory");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        GAZE_FATAL("cannot create cache directory '", dir,
                   "': ", ec.message());
}

std::string
ResultCache::path(uint64_t hash) const
{
    return dir + "/" + cellHashHex(hash) + ".json";
}

bool
ResultCache::lookup(uint64_t hash, const std::string &key,
                    CellRecord *out, std::string *why) const
{
    std::string file = path(hash);
    std::ifstream in(file, std::ios::binary);
    if (!in)
        return false; // plain miss: not yet computed

    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());

    JsonValue doc;
    std::string error;
    if (!parseJson(text, &doc, &error) || !doc.isObject()) {
        if (why)
            *why = file + ": unparseable cell record ("
                   + (error.empty() ? "not an object" : error)
                   + "), recomputing";
        return false;
    }

    const JsonValue *schema = doc.find("schema");
    if (!schema || !schema->isNumber()
        || schema->asNumber() != double(kCellSchemaVersion)) {
        if (why)
            *why = file + ": stale schema, recomputing";
        return false;
    }
    const JsonValue *stored_key = doc.find("key");
    if (!stored_key || !stored_key->isString()
        || stored_key->asString() != key) {
        if (why)
            *why = file + ": canonical-key mismatch (hash collision?), "
                   "recomputing";
        return false;
    }

    const JsonValue *ipc = doc.find("ipc");
    const JsonValue *seconds = doc.find("seconds");
    const JsonValue *minstr = doc.find("minstr_per_sec");
    RunSummary summary;
    if (!ipc || !ipc->isNumber() || !seconds || !seconds->isNumber()
        || !minstr || !minstr->isNumber()
        || !countField(doc, "pf_issued", &summary.pfIssued)
        || !countField(doc, "pf_filled", &summary.pfFilled)
        || !countField(doc, "pf_useful", &summary.pfUseful)
        || !countField(doc, "pf_late", &summary.pfLate)
        || !countField(doc, "pf_late_load", &summary.pfLateLoad)
        || !countField(doc, "pf_late_rfo", &summary.pfLateRfo)
        || !countField(doc, "llc_demand_miss", &summary.llcDemandMiss)
        || !countField(doc, "events_dispatched",
                       &summary.eventsDispatched)
        || !countField(doc, "cycles_executed", &summary.cyclesExecuted)
        || !countField(doc, "cycles_skipped",
                       &summary.cyclesSkipped)) {
        if (why)
            *why = file + ": malformed cell record, recomputing";
        return false;
    }

    // Per-scheme attribution (schema v4). An empty array is valid —
    // baselines have no schemes, and GAZE_OBS=OFF builds record none —
    // but a missing or malformed member is a defect, hence a miss.
    const JsonValue *schemes = doc.find("schemes");
    if (!schemes || !schemes->isArray()) {
        if (why)
            *why = file + ": malformed cell record, recomputing";
        return false;
    }
    for (const JsonValue &s : schemes->items()) {
        if (!s.isObject())
            break;
        const JsonValue *name = s.find("name");
        SchemeCount sc;
        if (!name || !name->isString()
            || !countField(s, "issued", &sc.issued)
            || !countField(s, "filled", &sc.filled)
            || !countField(s, "useful", &sc.useful)
            || !countField(s, "late", &sc.late)
            || !countField(s, "useless", &sc.useless)
            || !countField(s, "fill_to_use_sum", &sc.fillToUseSum)
            || !countField(s, "fill_to_use_cnt", &sc.fillToUseCnt))
            break;
        sc.name = name->asString();
        summary.schemes.push_back(std::move(sc));
    }
    if (summary.schemes.size() != schemes->items().size()) {
        if (why)
            *why = file + ": malformed scheme entry, recomputing";
        return false;
    }

    out->key = key;
    summary.ipc = ipc->asNumber();
    summary.minstrPerSec = minstr->asNumber();
    out->summary = summary;
    out->seconds = seconds->asNumber();
    return true;
}

void
ResultCache::store(uint64_t hash, const CellRecord &rec) const
{
    JsonWriter j;
    j.beginObject();
    j.field("schema", uint64_t(kCellSchemaVersion));
    j.field("key", rec.key);
    j.field("ipc", rec.summary.ipc);
    j.field("pf_issued", rec.summary.pfIssued);
    j.field("pf_filled", rec.summary.pfFilled);
    j.field("pf_useful", rec.summary.pfUseful);
    j.field("pf_late", rec.summary.pfLate);
    j.field("pf_late_load", rec.summary.pfLateLoad);
    j.field("pf_late_rfo", rec.summary.pfLateRfo);
    j.field("llc_demand_miss", rec.summary.llcDemandMiss);
    j.field("events_dispatched", rec.summary.eventsDispatched);
    j.field("cycles_executed", rec.summary.cyclesExecuted);
    j.field("cycles_skipped", rec.summary.cyclesSkipped);
    j.field("minstr_per_sec", rec.summary.minstrPerSec);
    j.field("seconds", rec.seconds);
    j.key("schemes").beginArray();
    for (const SchemeCount &s : rec.summary.schemes) {
        j.beginObject();
        j.field("name", s.name);
        j.field("issued", s.issued);
        j.field("filled", s.filled);
        j.field("useful", s.useful);
        j.field("late", s.late);
        j.field("useless", s.useless);
        j.field("fill_to_use_sum", s.fillToUseSum);
        j.field("fill_to_use_cnt", s.fillToUseCnt);
        j.endObject();
    }
    j.endArray();
    j.endObject();
    std::string text = j.str();
    text += '\n';

    // Atomic publish: concurrent writers — sibling shards (distinct
    // pids) or threads of one process (distinct counter values) —
    // each write their own temp file; the rename makes whole files
    // appear, never partial ones, and the last rename wins whole.
    static std::atomic<uint64_t> storeCounter{0};
    std::string final_path = path(hash);
    std::string tmp_path =
        // gaze-lint: allow(wall-clock): pid only suffixes the temp
        // file (cross-process uniqueness); renamed away, never part
        // of published bytes.
        final_path + ".tmp." + std::to_string(getpid()) + "."
        + std::to_string(storeCounter.fetch_add(1));
    {
        std::ofstream out_file(tmp_path,
                               std::ios::binary | std::ios::trunc);
        if (!out_file)
            GAZE_FATAL("cannot create cache file '", tmp_path, "'");
        out_file.write(text.data(),
                       static_cast<std::streamsize>(text.size()));
        out_file.close();
        if (!out_file)
            GAZE_FATAL("write failed on cache file '", tmp_path, "'");
    }
    std::error_code ec;
    std::filesystem::rename(tmp_path, final_path, ec);
    if (ec)
        GAZE_FATAL("cannot publish cache file '", final_path,
                   "': ", ec.message());
}

} // namespace gaze
