/**
 * @file
 * Declarative experiment campaigns: a JSON spec file names the
 * prefetcher axis, the workload axis (explicit names or whole
 * suites), the attach levels and core counts to sweep, and the phase
 * lengths; expansion turns it into a deterministic list of cells —
 * one (config, prefetcher, workload) simulation each — plus the
 * deduplicated no-prefetch baseline jobs those cells are scored
 * against. Every cell carries its canonical text and FNV-1a hash
 * (harness/cell_key), which is the address of its cached result.
 *
 * Spec format (all axes validated against the driver registries,
 * unknown keys fatal; the prefetcher axis is canonicalized by the
 * prefetcher registry on load, so equivalent spellings collapse to
 * one axis entry and the cells/report labels are spelling-invariant):
 *
 *   {
 *     "name": "fig06_main",            // required, experiment id
 *     "prefetchers": ["gaze", ...],    // required, factory specs
 *     "suites": ["spec06", ...],       // default: the five main suites
 *     "workloads": ["mcf", ...],       // overrides "suites"
 *     "levels": ["l1"],                // default ["l1"]; "l1"/"l2"
 *     "cores": [1, 4],                 // default [1]
 *     "warmup": 200000,                // optional; 0 = scale default
 *     "sim": 400000,                   // optional; 0 = scale default
 *     "trace_dir": "traces"            // optional .gzt replay dir
 *   }
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/json.hh"
#include "harness/runner.hh"
#include "workloads/suites.hh"

namespace gaze
{

/** The parsed, validated campaign spec file. */
struct CampaignSpec
{
    std::string name;
    std::vector<std::string> prefetchers;
    std::vector<std::string> suites;        ///< used when workloadNames empty
    std::vector<std::string> workloadNames; ///< explicit workload axis
    std::vector<std::string> levels = {"l1"};
    std::vector<uint32_t> coreCounts = {1};
    RunConfig run;
    std::string traceDir;
};

/** One expanded simulation cell (with a prefetcher attached). */
struct CampaignCell
{
    std::string prefetcher;
    std::string level;
    uint32_t cores = 1;
    WorkloadDef workload;
    PfSpec pf;

    std::string key; ///< canonical cell text
    uint64_t hash = 0;

    /** The no-prefetch baseline cell this one is scored against. */
    std::string baselineKey;
    uint64_t baselineHash = 0;
};

/** One deduplicated no-prefetch baseline job. */
struct CampaignBaseline
{
    uint32_t cores = 1;
    WorkloadDef workload;
    std::string key;
    uint64_t hash = 0;
};

/** A fully expanded campaign: what the engine executes and caches. */
struct Campaign
{
    CampaignSpec spec;
    std::vector<WorkloadDef> workloads; ///< the resolved workload axis
    std::vector<CampaignCell> cells;    ///< level, cores, pf, workload order
    std::vector<CampaignBaseline> baselines; ///< first-appearance order
};

/**
 * Validate a parsed spec document against the registries. Fatal on
 * missing/unknown keys, unknown prefetchers/suites/workloads/levels,
 * or malformed values — a campaign must never silently drop an axis.
 */
CampaignSpec parseCampaignSpec(const JsonValue &root);

/**
 * Non-fatal preflight of @p root: empty string when parseCampaignSpec
 * would accept it, else the first problem found, phrased for a client.
 * Long-running services (gaze_serve) must call this before handing a
 * client-supplied document to the fatal parser — it is kept at least
 * as strict as parseCampaignSpec + expansion for every axis, so a
 * document that passes here cannot kill the daemon.
 */
std::string checkCampaignSpecDoc(const JsonValue &root);

/**
 * Non-fatal validation of one prefetcher factory spec string against
 * the registry (scheme known, options declared, values typed/ranged).
 * Empty string when canonicalPrefetcherSpec would accept it.
 */
std::string checkPrefetcherSpecText(const std::string &text);

/**
 * Expand the axes into cells and deduplicated baselines, resolving
 * trace_dir replay and computing every cache key. Deterministic: the
 * same spec (and scale) always yields the same cells in the same
 * order, which sharded execution relies on.
 */
Campaign expandCampaign(const CampaignSpec &spec);

/** Load + parse + expand a spec file (fatal on any problem). */
Campaign loadCampaign(const std::string &path);

} // namespace gaze
