#include "campaign/report.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <tuple>

#include "common/log.hh"
#include "harness/cell_key.hh"
#include "harness/export.hh"
#include "harness/table.hh"

namespace gaze
{
namespace
{

/** Fixed-precision CSV number (locale-independent). */
std::string
csvNum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

/**
 * Round @p v through the JsonWriter's %.10g rendering. Values read
 * back from a previous report went through that rounding once, so
 * deltas are computed at matching precision — identical results give
 * an exact 0.0 delta, not rounding noise.
 */
double
jsonRounded(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return std::strtod(buf, nullptr);
}

/** Identity of one suite row for --compare matching. */
using RowKey = std::tuple<std::string, std::string, uint32_t,
                          std::string>; // pf, level, cores, suite

/**
 * Pull the per-suite speedups out of a previous report document.
 * Fatal when the document has no usable "suites" array — comparing
 * against a non-report file is a user error worth naming.
 */
std::map<RowKey, double>
previousSuiteSpeedups(const JsonValue &previous)
{
    if (!previous.isObject())
        GAZE_FATAL("--compare file is not a report document "
                   "(not a JSON object)");
    const JsonValue *suites = previous.find("suites");
    if (!suites || !suites->isArray())
        GAZE_FATAL("--compare file has no \"suites\" array (not a "
                   "gaze_campaign report?)");

    std::map<RowKey, double> out;
    for (const auto &row : suites->items()) {
        if (!row.isObject())
            continue;
        const JsonValue *pf = row.find("prefetcher");
        const JsonValue *level = row.find("level");
        const JsonValue *cores = row.find("cores");
        const JsonValue *suite = row.find("suite");
        const JsonValue *speedup = row.find("speedup");
        if (!pf || !pf->isString() || !suite || !suite->isString()
            || !speedup || !speedup->isNumber())
            continue;
        // Older gaze_sim documents carry no level/cores per row; let
        // them match single-level single-core campaigns. A cores
        // value outside [0, 2^32) is not something we ever wrote —
        // skip the row rather than cast out of range (UB).
        std::string level_s =
            level && level->isString() ? level->asString() : "l1";
        uint32_t cores_n = 1;
        if (cores) {
            if (!cores->isNumber())
                continue;
            double n = cores->asNumber();
            if (!(n >= 0) || n > 4294967295.0)
                continue;
            cores_n = static_cast<uint32_t>(n);
        }
        out[{pf->asString(), level_s, cores_n, suite->asString()}] =
            speedup->asNumber();
    }
    return out;
}

} // namespace

CampaignReport
buildReport(const Campaign &campaign, const ResultCache &cache,
            const JsonValue *previous)
{
    // Load every record first so a partial cache fails fast, naming
    // the first missing cell and the total shortfall.
    std::map<uint64_t, CellRecord> baselineRecords;
    uint64_t missing = 0;
    std::string first_missing;
    for (const auto &b : campaign.baselines) {
        CellRecord rec;
        if (cache.lookup(b.hash, b.key, &rec)) {
            baselineRecords.emplace(b.hash, std::move(rec));
        } else {
            ++missing;
            if (first_missing.empty())
                first_missing = "baseline x " + b.workload.name;
        }
    }
    std::vector<CellRecord> cellRecords(campaign.cells.size());
    std::vector<PrefetchMetrics> metrics(campaign.cells.size());
    for (size_t i = 0; i < campaign.cells.size(); ++i) {
        const CampaignCell &cell = campaign.cells[i];
        if (!cache.lookup(cell.hash, cell.key, &cellRecords[i])) {
            ++missing;
            if (first_missing.empty())
                first_missing =
                    cell.pf.label() + " x " + cell.workload.name;
        }
    }
    if (missing)
        GAZE_FATAL("cannot aggregate: ", missing,
                   " cell(s) not in cache '", cache.directory(),
                   "' (first: ", first_missing,
                   ") — run the campaign (all shards) first");

    for (size_t i = 0; i < campaign.cells.size(); ++i) {
        const auto &base =
            baselineRecords.at(campaign.cells[i].baselineHash);
        metrics[i] =
            computeMetrics(base.summary, cellRecords[i].summary);
    }

    // Suite order: first appearance across the workload axis.
    std::vector<std::string> suiteOrder;
    for (const auto &w : campaign.workloads)
        if (std::find(suiteOrder.begin(), suiteOrder.end(), w.suite)
            == suiteOrder.end())
            suiteOrder.push_back(w.suite);

    // Cells are laid out level -> cores -> prefetcher -> workload.
    const size_t nw = campaign.workloads.size();
    const size_t np = campaign.spec.prefetchers.size();
    CampaignReport report;
    size_t group = 0; // index of the (level, cores, pf) block
    for (const auto &level : campaign.spec.levels) {
        (void)level;
        for (uint32_t cores : campaign.spec.coreCounts) {
            (void)cores;
            for (size_t pi = 0; pi < np; ++pi) {
                size_t base_idx = group * nw;
                for (const auto &suite : suiteOrder) {
                    CampaignSuiteRow row;
                    const CampaignCell &first =
                        campaign.cells[base_idx];
                    row.prefetcher = first.prefetcher;
                    row.level = first.level;
                    row.cores = first.cores;
                    row.suite = suite;
                    std::vector<double> speedups;
                    double acc = 0.0, cov = 0.0, late = 0.0;
                    for (size_t wi = 0; wi < nw; ++wi) {
                        if (campaign.workloads[wi].suite != suite)
                            continue;
                        const PrefetchMetrics &m =
                            metrics[base_idx + wi];
                        speedups.push_back(m.speedup);
                        acc += m.accuracy;
                        cov += m.coverage;
                        late += m.lateFraction;
                    }
                    row.workloads =
                        static_cast<uint32_t>(speedups.size());
                    if (row.workloads == 0)
                        continue;
                    row.summary.speedup = geomean(speedups);
                    row.summary.accuracy = acc / row.workloads;
                    row.summary.coverage = cov / row.workloads;
                    row.summary.lateFraction = late / row.workloads;
                    report.suites.push_back(std::move(row));
                }
                ++group;
            }
        }
    }

    // ---- JSON document (pure function of the cache content) --------
    JsonWriter j;
    j.beginObject();
    j.field("campaign", campaign.spec.name);
    j.field("schema", uint64_t(kCellSchemaVersion));

    j.key("config").beginObject();
    j.field("scale", simScale());
    j.field("warmup_instructions", campaign.spec.run.effectiveWarmup());
    j.field("sim_instructions", campaign.spec.run.effectiveSim());
    if (campaign.spec.traceDir.empty())
        j.key("trace_dir").nullValue();
    else
        j.field("trace_dir", campaign.spec.traceDir);
    j.key("levels").beginArray();
    for (const auto &level : campaign.spec.levels)
        j.value(level);
    j.endArray();
    j.key("cores").beginArray();
    for (uint32_t c : campaign.spec.coreCounts)
        j.value(uint64_t(c));
    j.endArray();
    j.endObject();

    j.key("prefetchers").beginArray();
    for (const auto &p : campaign.spec.prefetchers)
        j.value(p);
    j.endArray();

    j.key("workloads").beginArray();
    for (const auto &w : campaign.workloads) {
        j.beginObject();
        j.field("name", w.name);
        j.field("suite", w.suite);
        j.field("identity", workloadIdentity(w));
        j.endObject();
    }
    j.endArray();

    j.key("cells").beginArray();
    for (size_t i = 0; i < campaign.cells.size(); ++i) {
        const CampaignCell &cell = campaign.cells[i];
        const PrefetchMetrics &m = metrics[i];
        const CellRecord &base =
            baselineRecords.at(cell.baselineHash);
        j.beginObject();
        j.field("prefetcher", cell.prefetcher);
        j.field("level", cell.level);
        j.field("cores", uint64_t(cell.cores));
        j.field("workload", cell.workload.name);
        j.field("suite", cell.workload.suite);
        j.field("speedup", m.speedup);
        j.field("accuracy", m.accuracy);
        j.field("coverage", m.coverage);
        j.field("late_fraction", m.lateFraction);
        j.field("ipc", cellRecords[i].summary.ipc);
        j.field("base_ipc", base.summary.ipc);
        j.field("pf_issued", m.pfIssued);
        j.field("pf_filled", m.pfFilled);
        j.field("pf_useful", m.pfUseful);
        j.field("pf_late", m.pfLate);
        j.field("pf_late_load", m.pfLateLoad);
        j.field("pf_late_rfo", m.pfLateRfo);
        j.field("llc_miss_base", m.llcMissBase);
        j.field("llc_miss_pf", m.llcMissPf);
        // Per-scheme attribution (obs lifecycle tracking; empty on
        // GAZE_OBS=OFF builds and for records predating schema v4).
        j.key("schemes").beginArray();
        for (const SchemeMetrics &s : m.schemes) {
            j.beginObject();
            j.field("name", s.name);
            j.field("issued", s.issued);
            j.field("filled", s.filled);
            j.field("useful", s.useful);
            j.field("late", s.late);
            j.field("useless", s.useless);
            j.field("accuracy", s.accuracy);
            j.field("coverage", s.coverage);
            j.field("pollution", s.pollution);
            j.field("late_fraction", s.lateFraction);
            j.field("avg_fill_to_use", s.avgFillToUse);
            j.endObject();
        }
        j.endArray();
        j.field("cell", cellHashHex(cell.hash));
        j.field("baseline", cellHashHex(cell.baselineHash));
        j.endObject();
    }
    j.endArray();

    j.key("suites").beginArray();
    for (const auto &row : report.suites) {
        j.beginObject();
        j.field("prefetcher", row.prefetcher);
        j.field("level", row.level);
        j.field("cores", uint64_t(row.cores));
        j.field("suite", row.suite);
        j.field("workloads", uint64_t(row.workloads));
        j.field("speedup", row.summary.speedup);
        j.field("accuracy", row.summary.accuracy);
        j.field("coverage", row.summary.coverage);
        j.field("late_fraction", row.summary.lateFraction);
        j.endObject();
    }
    j.endArray();

    if (previous) {
        std::map<RowKey, double> before =
            previousSuiteSpeedups(*previous);
        uint64_t unmatched = 0;
        j.key("compare").beginObject();
        j.key("suites").beginArray();
        for (const auto &row : report.suites) {
            auto it = before.find({row.prefetcher, row.level,
                                   row.cores, row.suite});
            if (it == before.end()) {
                ++unmatched;
                continue;
            }
            j.beginObject();
            j.field("prefetcher", row.prefetcher);
            j.field("level", row.level);
            j.field("cores", uint64_t(row.cores));
            j.field("suite", row.suite);
            double after = jsonRounded(row.summary.speedup);
            j.field("speedup_before", it->second);
            j.field("speedup_after", after);
            j.field("speedup_delta", after - it->second);
            j.endObject();
        }
        j.endArray();
        j.field("rows_without_previous", unmatched);
        j.endObject();
    }

    j.endObject();
    report.json = j.str();

    // ---- per-suite CSV ----------------------------------------------
    CsvExport csv(campaign.spec.name);
    csv.header({"prefetcher", "level", "cores", "suite", "workloads",
                "speedup", "accuracy", "coverage", "late_fraction"});
    for (const auto &row : report.suites) {
        csv.row({row.prefetcher, row.level, std::to_string(row.cores),
                 row.suite, std::to_string(row.workloads),
                 csvNum(row.summary.speedup),
                 csvNum(row.summary.accuracy),
                 csvNum(row.summary.coverage),
                 csvNum(row.summary.lateFraction)});
    }
    report.csv = csv.toCsv();
    return report;
}

std::string
reportTable(const std::vector<CampaignSuiteRow> &rows)
{
    TextTable t({"prefetcher", "level", "cores", "suite", "workloads",
                 "speedup", "accuracy", "coverage", "late"});
    for (const auto &row : rows) {
        t.addRow({row.prefetcher, row.level, std::to_string(row.cores),
                  row.suite, std::to_string(row.workloads),
                  TextTable::fmt(row.summary.speedup),
                  TextTable::pct(row.summary.accuracy),
                  TextTable::pct(row.summary.coverage),
                  TextTable::pct(row.summary.lateFraction)});
    }
    return t.toString();
}

CampaignCacheStatus
campaignStatus(const Campaign &campaign, const ResultCache &cache)
{
    CampaignCacheStatus status;
    CellRecord rec;
    for (const auto &b : campaign.baselines) {
        if (cache.lookup(b.hash, b.key, &rec))
            ++status.cached;
        else
            ++status.missing;
    }
    for (const auto &cell : campaign.cells) {
        if (cache.lookup(cell.hash, cell.key, &rec))
            ++status.cached;
        else
            ++status.missing;
    }
    return status;
}

void
writeCampaignStatusFields(JsonWriter &j, const std::string &name,
                          const CampaignCacheStatus &status)
{
    j.key("campaign").value(name);
    j.key("schema").value(uint64_t(kCellSchemaVersion));
    j.key("total").value(status.cached + status.missing);
    j.key("cached").value(status.cached);
    j.key("missing").value(status.missing);
}

std::string
campaignStatusJson(const Campaign &campaign, const ResultCache &cache)
{
    CampaignCacheStatus status = campaignStatus(campaign, cache);
    JsonWriter j;
    j.beginObject();
    writeCampaignStatusFields(j, campaign.spec.name, status);
    j.key("cache_dir").value(cache.directory());
    j.endObject();
    return j.str();
}

} // namespace gaze
