/**
 * @file
 * Campaign aggregation: merge the cached cells of a campaign into one
 * BENCH-style JSON document plus a per-suite CSV, computing the
 * paper's metrics (speedup/accuracy/coverage/late fraction, suite
 * geomeans) from cached RunSummaries only — never from in-memory run
 * state — so the report is a pure function of the cache content and
 * therefore bitwise identical across reruns, shard layouts, and
 * processes. No wall-clock or host data appears in the report.
 *
 * When a previous report is supplied (--compare), a "compare" section
 * is appended with per-suite speedup deltas against it.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/cache.hh"
#include "campaign/json.hh"
#include "campaign/spec.hh"
#include "harness/runner.hh"

namespace gaze
{

/** One (level, cores, prefetcher, suite) aggregate row. */
struct CampaignSuiteRow
{
    std::string prefetcher;
    std::string level;
    uint32_t cores = 1;
    std::string suite;
    uint32_t workloads = 0;
    SuiteSummary summary;
};

/** The rendered aggregate outputs. */
struct CampaignReport
{
    std::string json;                     ///< BENCH document text
    std::string csv;                      ///< per-suite CSV text
    std::vector<CampaignSuiteRow> suites; ///< for the stdout table
};

/**
 * Aggregate every cell of @p campaign from @p cache. Fatal when any
 * cell or baseline is missing (naming it and how many more are
 * absent) — an aggregate over a partial cache would silently lie.
 * @p previous is a parsed earlier report document, or nullptr.
 */
CampaignReport buildReport(const Campaign &campaign,
                           const ResultCache &cache,
                           const JsonValue *previous);

/** Render the suite rows as an aligned text table for stdout. */
std::string reportTable(const std::vector<CampaignSuiteRow> &rows);

/** Cache coverage of a campaign without simulating anything. */
struct CampaignCacheStatus
{
    uint64_t cached = 0;
    uint64_t missing = 0;
};

CampaignCacheStatus campaignStatus(const Campaign &campaign,
                                   const ResultCache &cache);

class JsonWriter;

/**
 * Append the machine-readable status fields shared by `gaze_campaign
 * status --json` and the gaze_serve status event, inside an object the
 * caller has opened: campaign name, cell-record schema version, and
 * total/cached/missing job counts. One shape, two producers — scripts
 * parse either without caring which answered.
 */
void writeCampaignStatusFields(JsonWriter &j, const std::string &name,
                               const CampaignCacheStatus &status);

/** The complete one-line document for `gaze_campaign status --json`. */
std::string campaignStatusJson(const Campaign &campaign,
                               const ResultCache &cache);

} // namespace gaze
